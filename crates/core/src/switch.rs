//! The MP5 switch simulator (architecture §3.2 + runtime §3.4).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use mp5_banzai::RunResult;
use mp5_compiler::program::{INDEX_ARRAY_LEVEL, REG_STAGE_SENTINEL};
use mp5_compiler::CompiledProgram;
use mp5_fabric::{
    Crossbar, Entry, FifoParts, FifoStats, LaneParts, LogicalFifo, OrderKey, PhantomChannel,
    PhantomKey, PopOutcome,
};
use mp5_faults::{FaultClass, FaultInjector, FaultKind, NoFaults, PhantomFate};
use mp5_trace::{
    BufSink, DropCause, Event, EventKind, MemSink, NopSink, TraceCtx, TraceSink, NO_LOC,
};
use mp5_types::time::cycle_len;
use mp5_types::{AccessTag, FastSet, Packet, PacketId, PipelineId, RegId, StageId, Value};

use crate::config::{ConfigError, EngineMode, ExecPath, ShardingMode, SprayMode, SwitchConfig};
use crate::engine::{shard_ranges, CycleTimings, WorkerPool};
use crate::report::RunReport;
use crate::shard;
use crate::state::{
    ChannelFlightSnap, ChannelSnap, DropsSnap, EntrySnap, FaultSnap, FifoSnap, FlightState,
    KeySnap, LaneSnap, QueueSnap, ReportSnap, RestoreError, ResultSnap, StatsSnap, SwapError,
    SwapReport, SwitchState, XbarSnap,
};

/// The struct-of-arrays work phase (a child module so it can share the
/// private work-phase types below; see DESIGN.md §13).
#[path = "batch.rs"]
mod batch;
use batch::{batch_work, PacketBatch, PipeView};

/// Converts a fabric phantom key into the trace schema's access key.
fn tkey(key: PhantomKey) -> mp5_trace::Key {
    mp5_trace::Key {
        pkt: key.pkt,
        reg: key.reg,
        index: key.index,
    }
}

/// Stable identity hash of a phantom key, fed to the fault injector's
/// phantom-drop decision. Pure function of the key, so the sequential
/// and parallel engines see identical fates.
fn fault_key_hash(key: &PhantomKey) -> u64 {
    key.pkt.0 ^ ((key.reg.0 as u64) << 48) ^ ((key.index as u64) << 32)
}

/// The simulator's liveness invariant broke: a run failed to drain all
/// in-flight work within its cycle cap. Carries a snapshot of where the
/// stuck work sits, for debugging deadlocked configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The cycle cap that was exceeded.
    pub cap: u64,
    /// Packets still waiting at ingress.
    pub ingress: usize,
    /// Packets occupying pipeline lanes.
    pub in_lanes: usize,
    /// Packets sitting in stage FIFOs.
    pub queued: usize,
    /// Phantoms still in flight on the dedicated channel.
    pub channel: usize,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles: ingress={}, in-lanes={}, queued={}, channel={}",
            self.cap, self.ingress, self.in_lanes, self.queued, self.channel
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// A packet in flight through the switch, with its entry-order key and
/// ingress pipeline (the lane its phantoms use).
#[derive(Debug, Clone)]
struct Flight {
    pkt: Packet,
    order: OrderKey,
    ingress: PipelineId,
}

impl Flight {
    /// The phantom key for one of this packet's access tags.
    fn key(&self, tag: &AccessTag) -> PhantomKey {
        PhantomKey {
            pkt: self.pkt.id,
            reg: tag.reg,
            index: tag.index,
        }
    }
}

/// A phantom packet payload on the dedicated channel: 48 bits in
/// hardware — `(packet id, state, index, pipeline, stage)` (Figure 5).
#[derive(Debug, Clone)]
struct PhantomMsg {
    key: PhantomKey,
    ts: OrderKey,
    dest: PipelineId,
    lane: PipelineId,
}

/// Per-(pipeline, stage) input queue: the bank of `k` FIFOs, or one
/// FIFO per register index in the ideal configuration.
#[derive(Debug)]
enum StageQueue {
    Logical(LogicalFifo<Flight>),
    PerIndex {
        subs: std::collections::BTreeMap<u32, LogicalFifo<Flight>>,
        max_total: usize,
        /// Bound applied to each per-index sub-queue (`fifo_capacity`):
        /// the ideal configuration honors bounded-FIFO runs too.
        capacity: Option<usize>,
    },
}

/// What a stage's scheduler did with its FIFO this cycle.
enum Serve {
    Idle,
    Served(Flight),
    Wasted,
}

impl StageQueue {
    fn new(cfg: &SwitchConfig) -> Self {
        if cfg.per_index_fifos {
            StageQueue::PerIndex {
                subs: Default::default(),
                max_total: 0,
                capacity: cfg.fifo_capacity,
            }
        } else {
            let mut fifo = LogicalFifo::new(cfg.pipelines, cfg.fifo_capacity);
            // The scalar interpreter is the reference oracle: it keeps
            // the paper-literal all-lane service scan, while the batch
            // path services through the occupancy index (same head
            // choice, cheaper scan — see `LogicalFifo`).
            fifo.set_reference_service(cfg.exec == ExecPath::Scalar);
            StageQueue::Logical(fifo)
        }
    }

    fn sub(
        subs: &mut std::collections::BTreeMap<u32, LogicalFifo<Flight>>,
        capacity: Option<usize>,
        index: u32,
    ) -> &mut LogicalFifo<Flight> {
        subs.entry(index)
            .or_insert_with(|| LogicalFifo::new(1, capacity))
    }

    fn push_phantom<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        ts: OrderKey,
        lane: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> bool {
        match self {
            StageQueue::Logical(f) => f.push_phantom_traced(key, ts, lane, sink, ctx).is_ok(),
            StageQueue::PerIndex {
                subs,
                max_total,
                capacity,
            } => {
                let ok = Self::sub(subs, *capacity, key.index)
                    .push_phantom_traced(key, ts, PipelineId(0), sink, ctx)
                    .is_ok();
                *max_total = (*max_total).max(subs.values().map(|f| f.len()).sum::<usize>());
                ok
            }
        }
    }

    fn push_data<S: TraceSink>(
        &mut self,
        fl: Flight,
        ts: OrderKey,
        lane: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<(), Flight> {
        let pkt = fl.pkt.id;
        match self {
            StageQueue::Logical(f) => f.push_data_traced(pkt, fl, ts, lane, sink, ctx).map(|_| ()),
            StageQueue::PerIndex {
                subs,
                max_total,
                capacity,
            } => {
                let r = Self::sub(subs, *capacity, INDEX_ARRAY_LEVEL)
                    .push_data_traced(pkt, fl, ts, PipelineId(0), sink, ctx)
                    .map(|_| ());
                *max_total = (*max_total).max(subs.values().map(|f| f.len()).sum::<usize>());
                r
            }
        }
    }

    /// Re-inserts a data packet whose phantom was lost to an injected
    /// fault directly into FIFO order at its original order key (the
    /// C1-preserving recovery path; see `LogicalFifo::push_recovered`).
    fn push_recovered<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        fl: Flight,
        ts: OrderKey,
        sink: &mut S,
        ctx: TraceCtx,
    ) {
        match self {
            StageQueue::Logical(f) => f.push_recovered_traced(key, fl, ts, sink, ctx),
            StageQueue::PerIndex {
                subs,
                max_total,
                capacity,
            } => {
                Self::sub(subs, *capacity, key.index).push_recovered_traced(key, fl, ts, sink, ctx);
                *max_total = (*max_total).max(subs.values().map(|f| f.len()).sum::<usize>());
            }
        }
    }

    fn insert_data<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        fl: Flight,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<(), Flight> {
        match self {
            StageQueue::Logical(f) => f.insert_data_traced(key, fl, sink, ctx).map(|_| ()),
            StageQueue::PerIndex { subs, capacity, .. } => Self::sub(subs, *capacity, key.index)
                .insert_data_traced(key, fl, sink, ctx)
                .map(|_| ()),
        }
    }

    fn cancel<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        free: bool,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> bool {
        match self {
            StageQueue::Logical(f) => f.cancel_traced(key, free, sink, ctx),
            StageQueue::PerIndex { subs, capacity, .. } => {
                Self::sub(subs, *capacity, key.index).cancel_traced(key, free, sink, ctx)
            }
        }
    }

    fn serve<S: TraceSink>(&mut self, st: usize, sink: &mut S, ctx: TraceCtx) -> Serve {
        match self {
            StageQueue::Logical(f) => match f.pop_traced(sink, ctx, |fl| fl.pkt.id) {
                PopOutcome::Data(fl) => Serve::Served(fl),
                PopOutcome::ConsumedStale => Serve::Wasted,
                PopOutcome::Empty | PopOutcome::BlockedOnPhantom(_) => Serve::Idle,
            },
            StageQueue::PerIndex { subs, .. } => {
                // No head-of-line blocking: serve the oldest *servable*
                // head across all per-index queues. A data head with
                // sibling placeholders in other sub-queues is eligible
                // only when every sibling is also at its queue's head —
                // otherwise an earlier-arrived packet for that sibling
                // index would be overtaken when this packet executes all
                // of its accesses at once.
                #[derive(Debug)]
                enum Head {
                    Phantom(PhantomKey),
                    Data(Vec<PhantomKey>),
                    Stale,
                }
                let mut heads: std::collections::BTreeMap<u32, (OrderKey, Head)> =
                    Default::default();
                for (&idx, f) in subs.iter_mut() {
                    let Some(entry) = f.peek_oldest() else {
                        continue;
                    };
                    let ts = entry.ts();
                    let head = match entry {
                        mp5_fabric::Entry::Phantom { key, .. } => Head::Phantom(*key),
                        mp5_fabric::Entry::Stale { free, .. } => {
                            debug_assert!(!free, "free stales are drained by peek");
                            Head::Stale
                        }
                        mp5_fabric::Entry::Data { item, .. } => Head::Data(
                            item.pkt
                                .tags
                                .iter()
                                .filter(|t| t.stage.index() == st)
                                .map(|t| item.key(t))
                                .collect(),
                        ),
                    };
                    heads.insert(idx, (ts, head));
                }
                let mut cands: Vec<(OrderKey, u32)> = heads
                    .iter()
                    .filter(|(_, (_, h))| !matches!(h, Head::Phantom(_)))
                    .map(|(&idx, (ts, _))| (*ts, idx))
                    .collect();
                cands.sort_unstable();
                for (_, idx) in cands {
                    if let (_, Head::Data(keys)) = &heads[&idx] {
                        // A sibling key gates service only while its
                        // phantom is still queued (in no-phantom modes,
                        // or after drops, there is nothing to wait for).
                        let eligible = keys.iter().all(|k| {
                            k.index == idx
                                || subs.get(&k.index).is_none_or(|sub| !sub.has_phantom(*k))
                                || matches!(
                                    heads.get(&k.index),
                                    Some((_, Head::Phantom(hk))) if hk == k
                                )
                        });
                        if !eligible {
                            continue;
                        }
                    }
                    // `idx` was collected from `heads`, which was built by
                    // iterating `subs`, and nothing has been removed since
                    // — absence would be a scheduler bug, so degrade to
                    // skipping the candidate rather than panicking.
                    let Some(sub) = subs.get_mut(&idx) else {
                        debug_assert!(false, "candidate index {idx} vanished from sub-queues");
                        continue;
                    };
                    let out = match sub.pop_traced(sink, ctx, |fl| fl.pkt.id) {
                        PopOutcome::Data(fl) => Serve::Served(fl),
                        PopOutcome::ConsumedStale => Serve::Wasted,
                        // The candidate filter above excluded phantom heads
                        // and `peek_oldest` drained free stales, so the pop
                        // can only observe the two servable outcomes; an
                        // `Empty`/`BlockedOnPhantom` here would mean the
                        // head changed mid-scan, which nothing in this
                        // single-threaded scheduler can do.
                        _ => unreachable!("candidate head is servable"),
                    };
                    // Drop drained sub-queues so the scheduler scan
                    // stays proportional to *occupied* indexes.
                    if sub.is_empty() {
                        subs.remove(&idx);
                    }
                    return out;
                }
                Serve::Idle
            }
        }
    }

    fn oldest_ts(&mut self) -> Option<OrderKey> {
        match self {
            StageQueue::Logical(f) => f.oldest_ts(),
            StageQueue::PerIndex { subs, .. } => {
                subs.values_mut().filter_map(|f| f.oldest_ts()).min()
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            StageQueue::Logical(f) => f.len(),
            StageQueue::PerIndex { subs, .. } => subs.values().map(|f| f.len()).sum(),
        }
    }

    /// O(1) for the logical layout (the FIFO keeps an occupancy
    /// counter); the batch sweep probes this for every `(pipeline,
    /// stage)` slot before paying for a full `serve` scan.
    fn is_empty(&self) -> bool {
        match self {
            StageQueue::Logical(f) => f.is_empty(),
            StageQueue::PerIndex { subs, .. } => subs.values().all(|f| f.is_empty()),
        }
    }

    fn max_occupancy(&self) -> usize {
        match self {
            StageQueue::Logical(f) => f.max_occupancy(),
            StageQueue::PerIndex { max_total, .. } => *max_total,
        }
    }
}

// ---------------------------------------------------------------------

// The per-cycle work phase, shared by both execution engines.
//
// Within a cycle, the admit/work phase of pipeline `pl` only touches
// `pl`-local structures (its incoming row, stage FIFOs, lanes, register
// copies) plus a handful of *shared* structures (the global sharding
// counters, the phantom channel, the run report, the trace sink). The
// functions below operate on the local state directly and buffer every
// shared-structure effect in a `WorkFx`, which the caller applies in
// ascending pipeline order — the exact order the historical sequential
// loop produced. The sequential engine calls them inline with the real
// sink; the parallel engine runs them on worker threads with a
// per-pipeline `MemSink` and replays events on the coordinator. Either
// way the observable behaviour is bit-identical (DESIGN.md §10).
// ---------------------------------------------------------------------

/// Read-only per-cycle view of the switch shared by every pipeline's
/// work phase. Everything here is immutable for the duration of the
/// phase (the index map only changes in the coordinator's remap phase),
/// which is what makes the phase shardable across worker threads
/// without locks or interior mutability.
struct WorkCtx<'a> {
    prog: &'a CompiledProgram,
    index_map: &'a [Vec<u16>],
    phantoms: bool,
    starvation_threshold: Option<u64>,
    /// Byte-times per pipeline cycle (`64·timing_k`).
    clen: u64,
    cycle: u64,
    prologue: usize,
    /// `(pipeline, stage)` pairs suppressed by injected stalls this
    /// cycle — plain data so the work phase needs no fault generics
    /// and the parallel engine stays bit-identical (empty under
    /// `NoFaults`, so the gate below is a length check on the hot
    /// path).
    stalls: &'a [(u16, u16)],
    /// Whether per-packet artifacts (the access log) are recorded.
    /// Fabric-scale runs turn this off — see
    /// [`SwitchConfig::record_detail`].
    record_detail: bool,
}

impl WorkCtx<'_> {
    /// Is `(pl, st)` under an injected stall this cycle? Stalls only
    /// suppress *queue service*: pass-through packets keep their slot
    /// (Invariant 2 is a hardware datapath property, not a scheduler
    /// choice), so a stall delays the serial order without breaking it.
    #[inline]
    fn stalled(&self, pl: usize, st: usize) -> bool {
        !self.stalls.is_empty() && self.stalls.contains(&(pl as u16, st as u16))
    }
}

/// One buffered update to the global sharding counters. Kept as a
/// single ordered stream because `inflight` decrements saturate: the
/// inc/dec interleaving must replay exactly as the sequential engine
/// produced it.
#[derive(Debug, Clone, Copy)]
enum CtrOp {
    /// Address resolution counted an upcoming access (`access_ctr` and
    /// `inflight` both increment).
    Inc { reg: RegId, index: u32 },
    /// A tag retired after its access executed (`inflight` decrements,
    /// saturating).
    Dec { reg: RegId, index: u32 },
}

/// A phantom injection onto the dedicated channel, buffered because the
/// channel is shared across pipelines (injection order = delivery order
/// per hop, so it must replay in pipeline order).
#[derive(Debug)]
struct PhantomInject {
    msg: PhantomMsg,
    from: StageId,
    dest: StageId,
}

/// Buffered side effects of one pipeline's work phase on *shared*
/// switch structures. The sequential engine applies them right after
/// each pipeline's work; the parallel engine ships them back to the
/// coordinator, which applies them in ascending pipeline order —
/// reproducing the sequential effect order exactly.
#[derive(Debug, Default)]
struct WorkFx {
    ctr_ops: Vec<CtrOp>,
    injects: Vec<PhantomInject>,
    /// `(reg, index, packet)` accesses for the report's access log.
    accesses: Vec<(RegId, u32, PacketId)>,
    wasted_cycles: u64,
    /// `(pipeline, stage)` locations of this cycle's starvation drops
    /// (the count *and* the per-stage attribution ride together so both
    /// engines replay them identically).
    starvation_drops: Vec<(u16, u16)>,
    phantoms_generated: u64,
    /// Stage-service slots suppressed by injected stalls.
    stall_cycles: u64,
}

/// Applies one pipeline's buffered side effects to the shared switch
/// structures, draining the buffers for reuse. Must be called in
/// ascending pipeline order within a cycle.
fn apply_work_fx(
    fx: &mut WorkFx,
    access_ctr: &mut [Vec<u64>],
    inflight: &mut [Vec<u32>],
    channel: &mut PhantomChannel<PhantomMsg>,
    report: &mut RunReport,
) {
    for op in fx.ctr_ops.drain(..) {
        match op {
            CtrOp::Inc { reg, index } => {
                access_ctr[reg.index()][index as usize] += 1;
                inflight[reg.index()][index as usize] += 1;
            }
            CtrOp::Dec { reg, index } => {
                let c = &mut inflight[reg.index()][index as usize];
                *c = c.saturating_sub(1);
            }
        }
    }
    for inj in fx.injects.drain(..) {
        channel.inject(inj.msg, inj.from, inj.dest);
    }
    for (reg, index, pkt) in fx.accesses.drain(..) {
        report
            .result
            .access_log
            .entry((reg, index))
            .or_default()
            .push(pkt);
    }
    report.wasted_cycles += fx.wasted_cycles;
    report.drops.starvation += fx.starvation_drops.len() as u64;
    for (p, s) in fx.starvation_drops.drain(..) {
        report.count_stage_drop(p, s);
    }
    report.phantoms_generated += fx.phantoms_generated;
    report.fault.stall_cycles += fx.stall_cycles;
    fx.wasted_cycles = 0;
    fx.phantoms_generated = 0;
    fx.stall_cycles = 0;
}

/// The admit/work phase of one pipeline for one cycle: each stage
/// processes at most one packet, with the incoming pass-through packet
/// taking priority over queued stateful work (Invariant 2).
#[allow(clippy::too_many_arguments)]
fn work_pipeline<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    pl: usize,
    inc_row: &mut [Option<Flight>],
    queues: &mut [StageQueue],
    lanes: &mut [Option<Flight>],
    regs: &mut [Vec<Value>],
    sink: &mut S,
    fx: &mut WorkFx,
) {
    for st in 0..inc_row.len() {
        if let Some(fl) = inc_row[st].take() {
            // Starvation handling (§3.4): drop an incoming packet that
            // is stateless-from-here-on in favor of a long-starved
            // queued stateful packet.
            if let Some(thr) = ctx.starvation_threshold {
                let starved = fl.pkt.tags.is_empty()
                    && queues[st].oldest_ts().is_some_and(|ts| {
                        let now = ctx.cycle * ctx.clen;
                        now.saturating_sub(ts.0) > thr * ctx.clen
                    });
                if starved {
                    fx.starvation_drops.push((pl as u16, st as u16));
                    if S::ENABLED {
                        TraceCtx::new(ctx.cycle, pl as u16, st as u16).emit(
                            sink,
                            EventKind::Drop {
                                pkt: fl.pkt.id,
                                cause: DropCause::Starvation,
                            },
                        );
                    }
                    if ctx.stalled(pl, st) {
                        fx.stall_cycles += 1;
                    } else {
                        serve_queue(ctx, pl, st, queues, lanes, regs, sink, fx);
                    }
                    continue;
                }
            }
            if S::ENABLED {
                // Invariant 2 in action: the incoming packet takes the
                // slot; `bypassed` flags the case where queued stateful
                // work was waiting.
                let bypassed = !queues[st].is_empty();
                TraceCtx::new(ctx.cycle, pl as u16, st as u16).emit(
                    sink,
                    EventKind::Execute {
                        pkt: fl.pkt.id,
                        queued: false,
                        bypassed,
                    },
                );
            }
            let fl = process_flight(ctx, pl, st, fl, queues, regs, sink, fx);
            lanes[st] = Some(fl);
        } else if ctx.stalled(pl, st) {
            // Injected stall: the stage's scheduler is frozen this
            // cycle. Only count slots where work was actually waiting.
            if !queues[st].is_empty() {
                fx.stall_cycles += 1;
            }
        } else {
            serve_queue(ctx, pl, st, queues, lanes, regs, sink, fx);
        }
    }
}

/// Serves one packet from the stage's FIFO, if the scheduler finds a
/// servable head.
#[allow(clippy::too_many_arguments)]
fn serve_queue<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    pl: usize,
    st: usize,
    queues: &mut [StageQueue],
    lanes: &mut [Option<Flight>],
    regs: &mut [Vec<Value>],
    sink: &mut S,
    fx: &mut WorkFx,
) {
    let tctx = TraceCtx::new(ctx.cycle, pl as u16, st as u16);
    match queues[st].serve(st, sink, tctx) {
        Serve::Served(fl) => {
            if S::ENABLED {
                tctx.emit(
                    sink,
                    EventKind::Execute {
                        pkt: fl.pkt.id,
                        queued: true,
                        bypassed: false,
                    },
                );
            }
            let fl = process_flight(ctx, pl, st, fl, queues, regs, sink, fx);
            lanes[st] = Some(fl);
        }
        Serve::Wasted => {
            fx.wasted_cycles += 1;
        }
        Serve::Idle => {}
    }
}

/// Executes the stage's work on a packet: address resolution at the
/// pipeline head, phantom generation at the end of the prologue, and
/// the body stage program elsewhere.
#[allow(clippy::too_many_arguments)]
fn process_flight<S: TraceSink>(
    ctx: &WorkCtx<'_>,
    pl: usize,
    st: usize,
    mut fl: Flight,
    queues: &mut [StageQueue],
    regs: &mut [Vec<Value>],
    sink: &mut S,
    fx: &mut WorkFx,
) -> Flight {
    if st == 0 && ctx.prologue > 0 {
        resolve_flight(ctx, &mut fl, fx);
    }
    if ctx.prologue > 0 && st == ctx.prologue - 1 && ctx.phantoms {
        // Phantom generation stage: one phantom per resolved access, in
        // tag order, onto the dedicated channel (buffered: the channel
        // is shared).
        for tag in &fl.pkt.tags {
            if S::ENABLED {
                TraceCtx::new(ctx.cycle, pl as u16, st as u16).emit(
                    sink,
                    EventKind::PhantomEmit {
                        key: tkey(fl.key(tag)),
                        dest_pipeline: tag.pipeline.0,
                        dest_stage: tag.stage.0,
                    },
                );
            }
            fx.injects.push(PhantomInject {
                msg: PhantomMsg {
                    key: fl.key(tag),
                    ts: fl.order,
                    dest: tag.pipeline,
                    lane: fl.ingress,
                },
                from: StageId(st as u16),
                dest: tag.stage,
            });
            fx.phantoms_generated += 1;
        }
    }
    if st >= ctx.prologue {
        let body = st - ctx.prologue;
        let accesses = ctx.prog.execute_stage(body, &mut fl.pkt.fields, regs);
        for a in &accesses {
            if S::ENABLED {
                TraceCtx::new(ctx.cycle, pl as u16, st as u16).emit(
                    sink,
                    EventKind::Access {
                        pkt: fl.pkt.id,
                        reg: a.reg,
                        index: a.index,
                        order: (fl.order.0, fl.order.1),
                    },
                );
            }
            if ctx.record_detail {
                fx.accesses.push((a.reg, a.index, fl.pkt.id));
            }
        }
        // Retire this stage's tags. A retired *speculative* tag whose
        // predicate turned out false produced no access: the queue slot
        // it consumed is §3.3's one wasted cycle. Sibling placeholders
        // beyond the first (the slot the data packet occupied) are
        // released now that the accesses have executed; each still
        // costs one pop cycle when reclaimed (§3.3's speculative-false
        // penalty).
        let mut retired_speculative = false;
        let mut first = true;
        while fl.pkt.tags.first().is_some_and(|t| t.stage.index() == st) {
            let tag = fl.pkt.tags.remove(0);
            retired_speculative |= tag.speculative;
            if !first && ctx.phantoms {
                let key = fl.key(&tag);
                let tctx = TraceCtx::new(ctx.cycle, pl as u16, st as u16);
                queues[st].cancel(key, false, sink, tctx);
            }
            first = false;
            if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
                fx.ctr_ops.push(CtrOp::Dec {
                    reg: tag.reg,
                    index: tag.index,
                });
            }
        }
        if retired_speculative && accesses.is_empty() {
            fx.wasted_cycles += 1;
        }
    }
    fl
}

/// Runs preemptive address resolution (§3.3) on an arriving packet:
/// computes every index it will access, consults the index-to-pipeline
/// map, tags the packet, and buffers the runtime counter bumps.
fn resolve_flight(ctx: &WorkCtx<'_>, fl: &mut Flight, fx: &mut WorkFx) {
    let resolved = ctx.prog.resolve(&mut fl.pkt.fields);
    let mut tags = Vec::with_capacity(resolved.len());
    for r in resolved {
        let dest = if r.reg == REG_STAGE_SENTINEL
            || r.index == INDEX_ARRAY_LEVEL
            || !ctx.prog.regs[r.reg.index()].shardable
        {
            // Pinned arrays and stage-level serialization live on
            // pipeline 0 (§3.3's conservative fallbacks).
            PipelineId(0)
        } else {
            PipelineId(ctx.index_map[r.reg.index()][r.index as usize])
        };
        if r.reg != REG_STAGE_SENTINEL && r.index != INDEX_ARRAY_LEVEL {
            fx.ctr_ops.push(CtrOp::Inc {
                reg: r.reg,
                index: r.index,
            });
        }
        tags.push(AccessTag {
            reg: r.reg,
            index: r.index,
            pipeline: dest,
            stage: r.stage,
            speculative: r.speculative,
        });
    }
    debug_assert!(tags.windows(2).all(|w| w[0].stage <= w[1].stage));
    fl.pkt.tags = tags;
}

// ---------------------------------------------------------------------
// The parallel engine: jobs, units, and the worker-side entry point.
// ---------------------------------------------------------------------

/// Immutable run-wide inputs shared with the worker threads once (via
/// `Arc`), so per-cycle jobs stay O(1) in size.
#[derive(Debug)]
struct EngineShared {
    prog: CompiledProgram,
    phantoms: bool,
    starvation_threshold: Option<u64>,
    clen: u64,
    prologue: usize,
    /// Whether the coordinator's sink observes events (workers record
    /// into per-pipeline `MemSink`s only in that case).
    tracing: bool,
    /// Mirrors [`SwitchConfig::record_detail`] for worker-side gating.
    record_detail: bool,
    /// Whether workers run the SoA batch work phase (`ExecPath::Batch`)
    /// instead of the scalar loop. Traced batch runs buffer events per
    /// pipeline and the coordinator replays them in pipeline order,
    /// same as the scalar parallel path.
    batch: bool,
}

/// One pipeline's work-phase state, *moved* to a worker for the cycle
/// and moved back afterwards (no sharing, no locks: `Vec` moves are
/// O(1) pointer swaps).
#[derive(Debug)]
struct Unit {
    pl: usize,
    inc_row: Vec<Option<Flight>>,
    queues: Vec<StageQueue>,
    lanes: Vec<Option<Flight>>,
    regs: Vec<Vec<Value>>,
    fx: WorkFx,
    /// Trace events this pipeline emitted this cycle, replayed by the
    /// coordinator in pipeline order (empty when untraced).
    events: Vec<Event>,
    /// Stages this unit parked flights at (batch path only): handed
    /// back to the coordinator's `park_mask` so the next batched move
    /// phase visits only occupied slots.
    park: u64,
    /// Occupied `inc_row` slots, from the coordinator's `inc_mask`
    /// (batch path only): the sweep tests bits instead of probing
    /// every slot.
    inc: u64,
    /// Possibly-non-empty stage FIFOs, from (and handed back to) the
    /// coordinator's `queue_mask` (batch path only).
    qmask: u64,
}

/// A cycle's worth of work for one worker: a contiguous chunk of
/// pipelines plus the shared read-only context.
#[derive(Debug)]
struct Job {
    shared: Arc<EngineShared>,
    index_map: Arc<Vec<Vec<u16>>>,
    cycle: u64,
    units: Vec<Unit>,
    /// Injected stalls active this cycle (empty under `NoFaults`; a
    /// plain clone per job keeps workers free of fault generics).
    stalls: Vec<(u16, u16)>,
    /// Recycled SoA buffers when `shared.batch` is set: the worker runs
    /// the batch passes over its contiguous pipeline range instead of
    /// the scalar loop (`None` on the scalar path).
    batch: Option<PacketBatch>,
}

/// What one worker hands back per job: the finished units (with
/// buffered effects and events) plus the job's recycled batch buffers.
type JobOut = (Vec<Unit>, Option<PacketBatch>);

/// Worker-side entry point: runs the work phase for every unit in the
/// job and hands the units (with buffered effects and events) back,
/// along with the job's recycled batch buffers.
fn run_job(mut job: Job) -> JobOut {
    let shared = Arc::clone(&job.shared);
    let ctx = WorkCtx {
        prog: &shared.prog,
        index_map: &job.index_map,
        phantoms: shared.phantoms,
        starvation_threshold: shared.starvation_threshold,
        clen: shared.clen,
        cycle: job.cycle,
        prologue: shared.prologue,
        stalls: &job.stalls,
        record_detail: shared.record_detail,
    };
    if let Some(pack) = job.batch.as_mut() {
        // SoA path: this worker's units are a contiguous range of the
        // cycle's global batch; sweep/execute/compact run over all of
        // them at once (see `batch_work`). `run_job` is a plain fn (no
        // sink generic reaches the workers), so the traced/untraced
        // split is a runtime branch on two monomorphizations — the type
        // parameter only feeds the `const ENABLED` guards.
        let mut views: Vec<PipeView<'_>> = job
            .units
            .iter_mut()
            .map(|u| PipeView {
                pl: u.pl,
                inc_row: &mut u.inc_row[..],
                queues: &mut u.queues[..],
                lanes: &mut u.lanes[..],
                regs: &mut u.regs[..],
                fx: &mut u.fx,
                events: &mut u.events,
                park: &mut u.park,
                inc: u.inc,
                qmask: &mut u.qmask,
            })
            .collect();
        if shared.tracing {
            batch_work::<MemSink>(&ctx, &mut views, pack);
        } else {
            batch_work::<NopSink>(&ctx, &mut views, pack);
        }
        return (job.units, job.batch);
    }
    for u in &mut job.units {
        if shared.tracing {
            let mut sink = MemSink {
                events: std::mem::take(&mut u.events),
            };
            work_pipeline(
                &ctx,
                u.pl,
                &mut u.inc_row,
                &mut u.queues,
                &mut u.lanes,
                &mut u.regs,
                &mut sink,
                &mut u.fx,
            );
            u.events = sink.into_events();
        } else {
            work_pipeline(
                &ctx,
                u.pl,
                &mut u.inc_row,
                &mut u.queues,
                &mut u.lanes,
                &mut u.regs,
                &mut NopSink,
                &mut u.fx,
            );
        }
    }
    (job.units, None)
}

/// A shareable handle to a parallel-engine worker pool.
///
/// A single-switch run owns its pool implicitly (the constructors build
/// one per switch), but a multi-switch fabric stepping many
/// [`Mp5Switch`]es in one global cycle loop should *not* pay one thread
/// pool per switch: build one `EnginePool` and hand a clone to every
/// switch via [`Mp5Switch::try_with_pool`]. Switches take turns on the
/// pool (the fabric advances them in a fixed order, so the mutex is
/// never contended), and determinism is unaffected — the merge order of
/// worker results is pipeline order regardless of which pool executed
/// them.
#[derive(Clone)]
pub struct EnginePool {
    inner: Arc<Mutex<WorkerPool<Job, JobOut>>>,
    workers: usize,
}

impl EnginePool {
    /// Spawns a pool of `workers` (≥ 1) persistent threads running the
    /// MP5 work phase.
    pub fn new(workers: usize) -> Self {
        EnginePool {
            inner: Arc::new(Mutex::new(WorkerPool::new(workers, run_job))),
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one barrier round on the pool (see [`WorkerPool::exchange`]).
    fn exchange(&self, jobs: Vec<Job>) -> Vec<JobOut> {
        self.inner
            .lock()
            .expect("engine pool lock poisoned")
            .exchange(jobs)
    }
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("workers", &self.workers)
            .finish()
    }
}

/// The parallel engine's per-switch state: the (possibly shared) worker
/// pool, the `Arc`ed run-wide context, and recycled per-pipeline
/// buffers.
struct ParEngine {
    pool: EnginePool,
    shared: Arc<EngineShared>,
    /// Recycled `(fx, events)` buffers, so steady-state cycles allocate
    /// nothing for effect buffering.
    spare: Vec<(WorkFx, Vec<Event>)>,
    /// Recycled per-job SoA buffers for the batch path (empty on the
    /// scalar path).
    spare_batch: Vec<PacketBatch>,
}

impl std::fmt::Debug for ParEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParEngine")
            .field("workers", &self.pool.workers())
            .finish()
    }
}

/// The sequential engine's SoA work-phase buffers (see `batch`).
#[derive(Debug, Default)]
struct BatchSeq {
    pack: PacketBatch,
    /// One side-effect buffer per pipeline.
    fx: Vec<WorkFx>,
    /// One trace-event buffer per pipeline (stay empty when untraced),
    /// drained into the switch's sink in ascending pipeline order.
    events: Vec<Vec<Event>>,
}

/// One deferred advance from the batched move phase's sweep. Plain
/// lane-to-lane advances are applied during the sweep itself (they
/// touch nothing shared); only completions and crossbar transfers are
/// deferred so grants can resolve stage-major before the effects —
/// egress, steer events, grant delays, stateful enqueues — replay in
/// the scalar (pipeline-ascending, stage-descending) order.
#[derive(Debug)]
enum MoveOp {
    /// The packet exits the final stage.
    Complete { pl: u16, fl: Flight },
    /// The packet is tagged for stage `next`: it crosses the crossbar
    /// to pipeline `dest` (possibly its own) and enqueues there.
    Steer {
        from: u16,
        next: u16,
        dest: PipelineId,
        fl: Flight,
    },
}

/// Reusable scratch for the batched move phase: the deferred ops in
/// sweep order plus per-stage `(from, to)` grant lists so the crossbar
/// counters update stage-major (one crossbar at a time) instead of
/// ping-ponging across all `stages` crossbars per pipeline. Both
/// vectors reach steady-state capacity after a few cycles.
#[derive(Debug, Default)]
struct MoveBatch {
    moves: Vec<MoveOp>,
    stage_steers: Vec<Vec<(u16, u16)>>,
}

/// The MP5 multi-pipeline switch.
///
/// Generic over a [`TraceSink`] `S` (default [`NopSink`]): with the
/// default, every emission guard is `if false` after monomorphization
/// and the instrumentation compiles away entirely (the `hotpath` bench
/// pins this down). Use [`Mp5Switch::with_sink`] to record a run.
///
/// Also generic over a [`FaultInjector`] `F` (default [`NoFaults`]):
/// the same static-dispatch trick makes every fault hook an `if false`
/// under the default, so the fault machinery costs nothing unless a
/// plan is attached via [`Mp5Switch::with_faults`].
#[derive(Debug)]
pub struct Mp5Switch<S: TraceSink = NopSink, F: FaultInjector = NoFaults> {
    cfg: SwitchConfig,
    prog: CompiledProgram,
    k: usize,
    /// Pipelines of the physical chip (clock period = 64·timing_k).
    timing_k: usize,
    stages: usize,
    prologue: usize,
    /// Register state replicated per pipeline; only the index-map-active
    /// copy of each index is meaningful (D2, Figure 3).
    regs: Vec<Vec<Vec<Value>>>,
    /// index-to-pipeline map, replicated in hardware, one logical copy
    /// here (`Arc` so parallel-engine jobs can snapshot it per cycle;
    /// the coordinator's remap phase is the only writer, via
    /// `Arc::make_mut` when no job holds a reference).
    index_map: Arc<Vec<Vec<u16>>>,
    /// Packet access counters per register index (dynamic sharding).
    access_ctr: Vec<Vec<u64>>,
    /// In-flight packet counters per register index (remap guard).
    inflight: Vec<Vec<u32>>,
    /// Input queues per (pipeline, stage).
    queues: Vec<Vec<StageQueue>>,
    /// Stage occupancy per (pipeline, stage).
    lanes: Vec<Vec<Option<Flight>>>,
    channel: PhantomChannel<PhantomMsg>,
    /// Reusable buffer for the channel's per-cycle deliveries.
    channel_buf: Vec<(PhantomMsg, StageId)>,
    /// Reusable buffer for one packet's stage keys in
    /// [`Mp5Switch::enqueue_stateful`] (runs per stateful arrival).
    key_scratch: Vec<PhantomKey>,
    crossbars: Vec<Crossbar>,
    /// Phantoms cancelled while still on the channel.
    cancelled: FastSet<PhantomKey>,
    /// Arrived packets waiting for an ingress slot.
    ingress_q: VecDeque<Flight>,
    /// Future arrivals, ascending entry order.
    arrivals: VecDeque<Packet>,
    rr: usize,
    cycle: u64,
    report: RunReport,
    /// Parallel engine (worker pool + shared statics); `None` under
    /// [`EngineMode::Sequential`].
    par: Option<ParEngine>,
    /// Reusable side-effect buffer for the sequential work phase.
    fx_buf: WorkFx,
    /// Whether the SoA batch work phase is in effect: decided once at
    /// construction (`ExecPath::Batch` on an untraced switch — traced
    /// runs keep the scalar loop so the event stream's historical
    /// interleaving is preserved; the check is a compile-time constant
    /// under the default `NopSink`).
    use_batch: bool,
    /// The sequential engine's SoA buffers: the packet batch plus one
    /// side-effect buffer per pipeline (the stage-major execute pass
    /// interleaves pipelines, so effects are bucketed per pipeline and
    /// applied in ascending order afterwards). `None` on the scalar
    /// path or parallel engine.
    batch_seq: Option<BatchSeq>,
    /// Reusable per-cycle incoming rows for the batch path (its rows
    /// come back all-`None` from the sweep, so the allocation recycles
    /// across cycles). The scalar reference keeps its historical
    /// per-cycle allocation; empty there.
    inc_buf: Vec<Vec<Option<Flight>>>,
    /// Reusable batched move-phase scratch (`ExecPath::Batch` only).
    move_buf: MoveBatch,
    /// Per-pipeline bitmask of stages holding a parked flight
    /// (`ExecPath::Batch` only, maintained for programs of ≤ 64
    /// stages): compaction sets a bit when it parks, the batched move
    /// phase drains exactly the set bits instead of scanning all
    /// `k × stages` lane slots — most of which are empty on sparse
    /// workloads, but each is a cache miss on a fat `Option<Flight>`.
    park_mask: Vec<u64>,
    /// Same idea for the incoming rows: the batched move phase and the
    /// ingress spray record which `incoming[pl][st]` slots they filled,
    /// and the sweep tests bits instead of `take()`-probing every fat
    /// `Option<Flight>` slot. Zeroed once the cycle's views are built.
    inc_mask: Vec<u64>,
    /// Per-pipeline bitmask of stage FIFOs that *may* be non-empty
    /// (stages < 64; conservative superset). The coordinator sets a bit
    /// at every enqueue site; the sweep visits only `inc | queue` bits
    /// and clears a bit lazily when the queue turns out empty — in
    /// steady state most of the `k × stages` service slots are idle
    /// every cycle, and each idle probe is an `Option`-enum load.
    queue_mask: Vec<u64>,
    sink: S,
    /// Deterministic fault schedule (inert [`NoFaults`] by default).
    faults: F,
    /// Per-pipeline liveness: `true` once an injected `PipelineFail`
    /// killed the pipeline. Dead pipelines stop receiving new work
    /// (ingress spray, sharded indexes) but keep draining what is
    /// already inside — C1 for in-flight packets is never broken.
    dead: Vec<bool>,
    /// Dead pipelines whose evacuation-complete event has been emitted.
    evac_done: Vec<bool>,
    /// Indexes evacuated off each pipeline via the D2 path so far.
    evac_counts: Vec<u64>,
    /// Phantoms lost to injected faults, awaiting their data packet
    /// (which re-enters FIFO order via the recovery path).
    lost: FastSet<PhantomKey>,
    /// Steered packets held back by injected crossbar grant delays:
    /// `(ready_cycle, dest pipeline, stage, flight)`, drained in
    /// insertion order once ready.
    pending_grants: VecDeque<(u64, PipelineId, usize, Flight)>,
    /// Packets that exited the final stage, `(packet, exit cycle)` in
    /// completion order. The streaming API's output side: a fabric
    /// calls [`Mp5Switch::drain_egress`] each tick to route them on;
    /// the whole-trace `run` path clears it every cycle so single-switch
    /// memory use is unchanged.
    egress_buf: Vec<(Packet, u64)>,
}

impl Mp5Switch<NopSink> {
    /// Builds an untraced switch running `prog` under `cfg`. Every
    /// pipeline is programmed identically (D1); each register array is
    /// allocated in full in every pipeline, with the index-to-pipeline
    /// map deciding the active copy (D2).
    ///
    /// Panics on a structurally invalid configuration; use
    /// [`Mp5Switch::try_new`] to handle that as a typed
    /// [`ConfigError`].
    pub fn new(prog: CompiledProgram, cfg: SwitchConfig) -> Self {
        Self::with_sink(prog, cfg, NopSink)
    }

    /// Like [`Mp5Switch::new`], but reports a structurally invalid
    /// configuration as a [`ConfigError`] instead of panicking.
    pub fn try_new(prog: CompiledProgram, cfg: SwitchConfig) -> Result<Self, ConfigError> {
        Self::try_with_sink(prog, cfg, NopSink)
    }
}

impl<S: TraceSink> Mp5Switch<S, NoFaults> {
    /// Builds a switch that records every observable action into
    /// `sink`. Semantically identical to [`Mp5Switch::new`]; the sink
    /// only observes. Panics on a structurally invalid configuration
    /// ([`Mp5Switch::try_with_sink`] is the non-panicking form).
    pub fn with_sink(prog: CompiledProgram, cfg: SwitchConfig, sink: S) -> Self {
        match Self::try_with_sink(prog, cfg, sink) {
            Ok(sw) => sw,
            Err(e) => panic!("invalid SwitchConfig: {e}"),
        }
    }

    /// The validating fault-free constructor.
    pub fn try_with_sink(
        prog: CompiledProgram,
        cfg: SwitchConfig,
        sink: S,
    ) -> Result<Self, ConfigError> {
        Mp5Switch::try_with_faults(prog, cfg, sink, NoFaults)
    }
}

impl<S: TraceSink, F: FaultInjector> Mp5Switch<S, F> {
    /// Builds a switch with a deterministic fault schedule attached
    /// (and a trace sink — pass [`NopSink`] for an untraced faulted
    /// run). Panics on a structurally invalid configuration;
    /// [`Mp5Switch::try_with_faults`] is the non-panicking form.
    pub fn with_faults(prog: CompiledProgram, cfg: SwitchConfig, sink: S, faults: F) -> Self {
        match Self::try_with_faults(prog, cfg, sink, faults) {
            Ok(sw) => sw,
            Err(e) => panic!("invalid SwitchConfig: {e}"),
        }
    }

    /// The validating constructor: rejects structurally invalid
    /// configurations (zero pipelines, `physical_pipelines` below the
    /// logical count, a zero-worker parallel engine) with a typed
    /// [`ConfigError`] instead of silently "fixing" them.
    pub fn try_with_faults(
        prog: CompiledProgram,
        cfg: SwitchConfig,
        sink: S,
        faults: F,
    ) -> Result<Self, ConfigError> {
        Self::build(prog, cfg, sink, faults, None)
    }

    /// Like [`Mp5Switch::try_with_faults`], but the parallel engine
    /// (when `cfg.engine` selects one) executes on the caller-provided
    /// shared [`EnginePool`] instead of spawning a private one — the
    /// multi-switch composition path, where one pool serves every
    /// switch in the fabric. Ignored under [`EngineMode::Sequential`].
    pub fn try_with_pool(
        prog: CompiledProgram,
        cfg: SwitchConfig,
        sink: S,
        faults: F,
        pool: &EnginePool,
    ) -> Result<Self, ConfigError> {
        Self::build(prog, cfg, sink, faults, Some(pool.clone()))
    }

    fn build(
        prog: CompiledProgram,
        cfg: SwitchConfig,
        sink: S,
        faults: F,
        pool: Option<EnginePool>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let k = cfg.pipelines;
        let timing_k = cfg.physical_pipelines.unwrap_or(k);
        let stages = prog.num_stages();
        let prologue = prog.resolution.stages;
        let regs: Vec<Vec<Vec<Value>>> = (0..k).map(|_| prog.initial_regs()).collect();
        let index_map: Vec<Vec<u16>> = prog
            .regs
            .iter()
            .enumerate()
            .map(|(ri, r)| init_map(ri, r, &cfg, k))
            .collect();
        let access_ctr = prog
            .regs
            .iter()
            .map(|r| vec![0u64; r.size as usize])
            .collect();
        let inflight = prog
            .regs
            .iter()
            .map(|r| vec![0u32; r.size as usize])
            .collect();
        let queues = (0..k)
            .map(|_| (0..stages).map(|_| StageQueue::new(&cfg)).collect())
            .collect();
        let lanes = (0..k).map(|_| vec![None; stages]).collect();
        let mut report = RunReport::new();
        report.set_cycle_len(cycle_len(timing_k));
        // Traced runs ride the SoA path too: the batch passes buffer
        // events per pipeline and flush them in the canonical scalar
        // order (see `batch::merge_flush`), so the recorded stream hash
        // is bit-identical to the scalar reference either way.
        let use_batch = cfg.exec == ExecPath::Batch;
        let par = match cfg.engine {
            EngineMode::Sequential => None,
            EngineMode::Parallel(_) => {
                let shared = Arc::new(EngineShared {
                    prog: prog.clone(),
                    phantoms: cfg.phantoms,
                    starvation_threshold: cfg.starvation_threshold,
                    clen: cycle_len(timing_k),
                    prologue,
                    tracing: S::ENABLED,
                    record_detail: cfg.record_detail,
                    batch: use_batch,
                });
                let pool = pool.unwrap_or_else(|| EnginePool::new(cfg.engine.workers_for(k)));
                Some(ParEngine {
                    pool,
                    shared,
                    spare: Vec::new(),
                    spare_batch: Vec::new(),
                })
            }
        };
        let batch_seq = (use_batch && par.is_none()).then(|| BatchSeq {
            pack: PacketBatch::default(),
            fx: (0..k).map(|_| WorkFx::default()).collect(),
            events: (0..k).map(|_| Vec::new()).collect(),
        });
        let inc_buf = if use_batch {
            (0..k).map(|_| vec![None; stages]).collect()
        } else {
            Vec::new()
        };
        Ok(Mp5Switch {
            channel: PhantomChannel::new(stages),
            channel_buf: Vec::new(),
            key_scratch: Vec::new(),
            crossbars: (0..stages).map(|_| Crossbar::new(k)).collect(),
            cfg,
            prog,
            k,
            timing_k,
            stages,
            prologue,
            regs,
            index_map: Arc::new(index_map),
            access_ctr,
            inflight,
            queues,
            lanes,
            cancelled: FastSet::default(),
            ingress_q: VecDeque::new(),
            arrivals: VecDeque::new(),
            rr: 0,
            cycle: 0,
            report,
            par,
            fx_buf: WorkFx::default(),
            use_batch,
            batch_seq,
            inc_buf,
            move_buf: MoveBatch::default(),
            park_mask: vec![0; k],
            inc_mask: vec![0; k],
            queue_mask: vec![0; k],
            sink,
            faults,
            dead: vec![false; k],
            evac_done: vec![false; k],
            evac_counts: vec![0; k],
            lost: FastSet::default(),
            pending_grants: VecDeque::new(),
            egress_buf: Vec::new(),
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Current index-to-pipeline map of a register.
    pub fn index_map(&self, reg: RegId) -> &[u16] {
        &self.index_map[reg.index()]
    }

    /// Runs a full trace to completion and returns the report.
    ///
    /// Panics if the simulation fails to drain within its cycle cap; use
    /// [`Mp5Switch::try_run`] to handle that as a structured
    /// [`InvariantViolation`] instead.
    pub fn run(self, packets: Vec<Packet>) -> RunReport {
        match self.try_run(packets) {
            Ok(report) => report,
            Err(v) => panic!("{v}"),
        }
    }

    /// Like [`Mp5Switch::run`], but also returns the trace sink with
    /// its recorded event stream.
    pub fn run_traced(self, packets: Vec<Packet>) -> (RunReport, S) {
        match self.try_run_traced(packets) {
            Ok(out) => out,
            Err(v) => panic!("{v}"),
        }
    }

    /// Runs a full trace to completion, reporting a structured
    /// [`InvariantViolation`] (instead of panicking) if the switch fails
    /// to drain within its cycle cap — the liveness invariant every
    /// well-formed configuration must uphold.
    pub fn try_run(self, packets: Vec<Packet>) -> Result<RunReport, InvariantViolation> {
        self.try_run_traced(packets).map(|(report, _)| report)
    }

    /// [`Mp5Switch::try_run`] returning the sink alongside the report,
    /// so callers can audit or export the recorded stream.
    pub fn try_run_traced(
        self,
        packets: Vec<Packet>,
    ) -> Result<(RunReport, S), InvariantViolation> {
        self.run_to_completion(packets, None)
    }

    /// [`Mp5Switch::try_run_traced`] that additionally records the
    /// wall-clock duration of every simulated cycle — the input for
    /// `mp5bench`'s per-cycle latency percentiles. The timing
    /// instrumentation does not affect the simulation itself.
    pub fn try_run_timed(
        self,
        packets: Vec<Packet>,
    ) -> Result<(RunReport, S, CycleTimings), InvariantViolation> {
        let mut nanos = Vec::new();
        let (report, sink) = self.run_to_completion(packets, Some(&mut nanos))?;
        Ok((report, sink, CycleTimings { nanos }))
    }

    // -----------------------------------------------------------------
    // Streaming (incremental) API — the interface a multi-switch fabric
    // drives. Instead of handing the switch a whole trace, the caller
    // `offer`s packets as they become due, `tick`s the switch one cycle
    // at a time in the fabric's global loop, and `drain_egress`es the
    // packets that exited this tick to route them onward. The whole-
    // trace `run` variants are a thin wrapper over the same `step`
    // loop, so the two paths are behaviourally identical.
    // -----------------------------------------------------------------

    /// Offers one packet to the switch's ingress.
    ///
    /// Packets must be offered in ascending [`Packet::entry_order_key`]
    /// order (the fabric maintains a per-switch monotone arrival clock
    /// to guarantee this); a violation is a caller bug and trips a
    /// debug assertion.
    pub fn offer(&mut self, pkt: Packet) {
        debug_assert!(
            self.arrivals
                .back()
                .is_none_or(|b| b.entry_order_key() <= pkt.entry_order_key()),
            "streamed packets must arrive in entry order"
        );
        self.report.offered += 1;
        let end = pkt.arrival + mp5_types::BYTES_PER_SLOT;
        if end > self.report.input_duration {
            self.report.input_duration = end;
        }
        self.arrivals.push_back(pkt);
    }

    /// Advances the switch by one cycle. Completed packets accumulate
    /// in the egress buffer until [`Mp5Switch::drain_egress`].
    pub fn tick(&mut self) {
        self.step();
    }

    /// Takes the packets that exited since the last drain, as
    /// `(packet, exit cycle)` in completion order.
    pub fn drain_egress(&mut self) -> Vec<(Packet, u64)> {
        std::mem::take(&mut self.egress_buf)
    }

    /// Number of offered packets not yet admitted into a pipeline.
    pub fn pending_ingress(&self) -> usize {
        self.arrivals.len() + self.ingress_q.len()
    }

    /// True when nothing is buffered or in flight anywhere inside the
    /// switch — the streaming analogue of the drain condition the
    /// whole-trace loop runs until.
    pub fn is_idle(&self) -> bool {
        self.drained()
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Read access to the in-progress report (offered/completed/drop
    /// counters are live; end-of-run aggregates are filled by
    /// [`Mp5Switch::finish_stream`]). A fabric uses this for resident
    /// accounting: `offered - completed - drops` packets are still
    /// inside the switch.
    pub fn live_report(&self) -> &RunReport {
        &self.report
    }

    /// Finalizes a streamed run: fills the report's end-of-run
    /// aggregates (final register state, queue statistics, cycle count)
    /// and returns it with the sink. The streaming counterpart of the
    /// tail of [`Mp5Switch::try_run_traced`].
    pub fn finish_stream(self) -> (RunReport, S) {
        self.finish()
    }

    /// The drain loop behind every `run` variant.
    fn run_to_completion(
        mut self,
        mut packets: Vec<Packet>,
        mut timings: Option<&mut Vec<u64>>,
    ) -> Result<(RunReport, S), InvariantViolation> {
        packets.sort_by_key(|p| p.entry_order_key());
        self.report.offered = packets.len() as u64;
        self.report.input_duration = packets
            .last()
            .map(|p| p.arrival + mp5_types::BYTES_PER_SLOT)
            .unwrap_or(0);
        self.arrivals = packets.into();
        let clen = cycle_len(self.timing_k);
        let input_cycles = self.report.input_duration / clen + 1;
        let cap = self.cfg.max_cycles.unwrap_or_else(|| {
            input_cycles * (self.k as u64 + 2) * 4 + (self.stages as u64) * 16 + 100_000
        });
        while !self.drained() {
            if self.cycle >= cap {
                return Err(InvariantViolation {
                    cap,
                    ingress: self.ingress_q.len(),
                    in_lanes: self.lanes.iter().flatten().filter(|l| l.is_some()).count(),
                    queued: self.queues.iter().flatten().map(|q| q.len()).sum(),
                    channel: self.channel.in_flight(),
                });
            }
            if let Some(t) = timings.as_deref_mut() {
                let t0 = std::time::Instant::now();
                self.step();
                t.push(t0.elapsed().as_nanos() as u64);
            } else {
                self.step();
            }
            // Whole-trace runs have no egress consumer: drop completions
            // as they happen so the buffer never grows past one cycle.
            self.egress_buf.clear();
        }
        Ok(self.finish())
    }

    fn drained(&self) -> bool {
        self.arrivals.is_empty()
            && self.ingress_q.is_empty()
            && self.channel.in_flight() == 0
            && self.pending_grants.is_empty()
            && self.lanes.iter().flatten().all(|l| l.is_none())
            && self.queues.iter().flatten().all(|q| q.is_empty())
    }

    /// Simulates one pipeline cycle.
    fn step(&mut self) {
        // 0. Fault schedule: fire due faults, classify them for the
        // recovery accounting, advance degradation state (compiled out
        // under the default `NoFaults`).
        if F::ENABLED {
            self.begin_faults();
        }

        // 1. Background dynamic sharding.
        if self.cycle > 0 && self.cycle.is_multiple_of(self.cfg.remap_period) {
            self.remap();
        }

        // 2. Phantom channel advances one hop; deliveries enter FIFOs.
        let mut deliveries = std::mem::take(&mut self.channel_buf);
        self.channel.advance_into(&mut deliveries);
        for (msg, stage) in deliveries.drain(..) {
            let ctx = TraceCtx::new(self.cycle, msg.dest.0, stage.0);
            if self.cancelled.remove(&msg.key) {
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::PhantomChannelCancel { key: tkey(msg.key) },
                    );
                }
                continue;
            }
            if F::ENABLED && self.phantom_faulted(&msg, stage.0, ctx) {
                continue;
            }
            let ok = self.queues[msg.dest.index()][stage.index()].push_phantom(
                msg.key,
                msg.ts,
                msg.lane,
                &mut self.sink,
                ctx,
            );
            if ok && stage.index() < 64 {
                self.queue_mask[msg.dest.index()] |= 1 << stage.index();
            }
            if !ok {
                self.report.drops.phantom_fifo_full += 1;
                self.report.count_stage_drop(msg.dest.0, stage.0);
            }
        }
        self.channel_buf = deliveries;

        // 2b. Injected crossbar grant delays: release held steered
        // packets whose delay has elapsed, in the order they were held.
        if F::ENABLED && !self.pending_grants.is_empty() {
            let pending = std::mem::take(&mut self.pending_grants);
            for (ready, dest, st, fl) in pending {
                if ready <= self.cycle {
                    self.enqueue_stateful(dest, st, fl);
                } else {
                    self.pending_grants.push_back((ready, dest, st, fl));
                }
            }
        }

        // 3. Move phase: all stage occupants advance simultaneously.
        // The batch path reuses a persistent buffer (its rows come back
        // empty from the sweep); the scalar reference keeps its
        // historical per-cycle allocation — its cost profile is part of
        // what `soa_check` measures, so it stays frozen (see DESIGN.md
        // §13).
        let mut incoming: Vec<Vec<Option<Flight>>> = if self.use_batch {
            let buf = std::mem::take(&mut self.inc_buf);
            debug_assert!(buf.iter().all(|row| row.iter().all(|s| s.is_none())));
            buf
        } else {
            (0..self.k).map(|_| vec![None; self.stages]).collect()
        };
        if self.use_batch {
            self.move_batched(&mut incoming);
        } else {
            self.move_scalar(&mut incoming);
        }
        // One statistics tick per crossbar per simulated cycle.
        self.crossbars.iter_mut().for_each(|x| x.end_cycle());

        // 3b. Ingress: spray eligible arrivals over pipelines.
        let now_end = (self.cycle + 1) * cycle_len(self.timing_k);
        while self.arrivals.front().is_some_and(|p| p.arrival < now_end) {
            let Some(pkt) = self.arrivals.pop_front() else {
                break; // unreachable: `front()` was just checked
            };
            let order = OrderKey(pkt.arrival, pkt.port.0 as u64);
            self.ingress_q.push_back(Flight {
                pkt,
                order,
                ingress: PipelineId(0), // assigned at admission
            });
        }
        let admit_limit = match self.cfg.spray {
            SprayMode::RoundRobin => self.k,
            SprayMode::SinglePipeline(_) => 1,
        };
        for _ in 0..admit_limit {
            if self.ingress_q.is_empty() {
                break;
            }
            let pl = match self.cfg.spray {
                SprayMode::RoundRobin => {
                    let pl = self.rr;
                    self.rr = (self.rr + 1) % self.k;
                    pl
                }
                SprayMode::SinglePipeline(p) => p,
            };
            if F::ENABLED && self.dead[pl] {
                // Dead pipelines take no new packets: the spray narrows
                // to the survivors (throughput degrades by ~k/(k-1) per
                // lost pipeline, the graceful-degradation bound).
                continue;
            }
            if incoming[pl][0].is_some() {
                continue;
            }
            let Some(mut fl) = self.ingress_q.pop_front() else {
                break; // unreachable: emptiness was checked above
            };
            fl.ingress = PipelineId(pl as u16);
            if S::ENABLED {
                TraceCtx::new(self.cycle, pl as u16, 0).emit(
                    &mut self.sink,
                    EventKind::Ingress {
                        pkt: fl.pkt.id,
                        order: (fl.order.0, fl.order.1),
                    },
                );
            }
            incoming[pl][0] = Some(fl);
            self.inc_mask[pl] |= 1;
        }

        // 4. Admit/work phase: each (pipeline, stage) processes at most
        // one packet; incoming pass-through has priority (Invariant 2).
        // Per-(pipeline, stage) work is data-independent within the
        // cycle — the crossbar exchange already happened in phase 3 —
        // so the parallel engine shards it over the worker pool, while
        // the sequential engine runs the same `work_pipeline` inline.
        // Shared-structure side effects are buffered per pipeline and
        // applied in ascending pipeline order either way, keeping the
        // two engines bit-identical.
        if self.par.is_some() {
            self.work_parallel(&mut incoming);
        } else if self.use_batch {
            self.work_batch_seq(&mut incoming);
        } else {
            let clen = cycle_len(self.timing_k);
            let mut fx = std::mem::take(&mut self.fx_buf);
            for (pl, inc_row) in incoming.iter_mut().enumerate() {
                let ctx = WorkCtx {
                    prog: &self.prog,
                    index_map: &self.index_map,
                    phantoms: self.cfg.phantoms,
                    starvation_threshold: self.cfg.starvation_threshold,
                    clen,
                    cycle: self.cycle,
                    prologue: self.prologue,
                    stalls: self.faults.active_stalls(),
                    record_detail: self.cfg.record_detail,
                };
                work_pipeline(
                    &ctx,
                    pl,
                    inc_row,
                    &mut self.queues[pl],
                    &mut self.lanes[pl],
                    &mut self.regs[pl],
                    &mut self.sink,
                    &mut fx,
                );
                apply_work_fx(
                    &mut fx,
                    &mut self.access_ctr,
                    &mut self.inflight,
                    &mut self.channel,
                    &mut self.report,
                );
            }
            self.fx_buf = fx;
        }
        if self.use_batch {
            self.inc_buf = incoming;
        }

        self.cycle += 1;
    }

    /// The reference (scalar) move phase: pipelines ascending, stages
    /// descending, each occupant completed / crossed / advanced in
    /// place. This order is the bit-identity contract the batched move
    /// phase replays.
    fn move_scalar(&mut self, incoming: &mut [Vec<Option<Flight>>]) {
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            for st in (0..self.stages).rev() {
                let Some(fl) = self.lanes[pl][st].take() else {
                    continue;
                };
                if st + 1 == self.stages {
                    self.complete(pl, fl);
                    continue;
                }
                let next = st + 1;
                let has_tag_here = fl.pkt.tags.first().is_some_and(|t| t.stage.index() == next);
                if has_tag_here {
                    let dest = fl.pkt.tags[0].pipeline;
                    self.crossbars[next].route_traced(
                        PipelineId(pl as u16),
                        dest,
                        &mut self.sink,
                        TraceCtx::new(self.cycle, pl as u16, next as u16),
                    );
                    if dest.index() != pl {
                        self.report.steered += 1;
                        if F::ENABLED {
                            let delay = self.faults.grant_delay();
                            if delay > 0 {
                                // Injected grant latency: the crossbar
                                // holds the steered packet; its phantom
                                // keeps its place in the serial order.
                                self.report.fault.delayed_grants += 1;
                                self.pending_grants
                                    .push_back((self.cycle + delay, dest, next, fl));
                                continue;
                            }
                        }
                    }
                    self.enqueue_stateful(dest, next, fl);
                } else {
                    inc_row[next] = Some(fl);
                }
            }
        }
    }

    /// The batched move phase (`ExecPath::Batch`): sweep stage
    /// occupants in the scalar order, applying plain advances
    /// immediately (they emit nothing and touch only this pipeline's
    /// incoming row) while deferring completions and crossbar transfers
    /// into [`MoveBatch`]; resolve crossbar grants stage-major (the
    /// usage counters are commutative, so regrouping them by stage is
    /// unobservable); then replay the deferred effects — egress, steer
    /// events, injected grant delays, stateful enqueues — in the exact
    /// sweep order, keeping `RunReport` and the event stream
    /// bit-identical to [`Mp5Switch::move_scalar`].
    fn move_batched(&mut self, incoming: &mut [Vec<Option<Flight>>]) {
        let mut mb = std::mem::take(&mut self.move_buf);
        mb.stage_steers.resize_with(self.stages, Vec::new);
        // Classification shared by both sweep strategies below: decide
        // what one occupant of `(pl, st)` does this cycle.
        fn classify(
            stages: usize,
            pl: usize,
            st: usize,
            fl: Flight,
            inc_row: &mut [Option<Flight>],
            inc_mask: &mut u64,
            mb: &mut MoveBatch,
        ) {
            if st + 1 == stages {
                mb.moves.push(MoveOp::Complete { pl: pl as u16, fl });
                return;
            }
            let next = st + 1;
            let has_tag_here = fl.pkt.tags.first().is_some_and(|t| t.stage.index() == next);
            if has_tag_here {
                let dest = fl.pkt.tags[0].pipeline;
                mb.stage_steers[next].push((pl as u16, dest.0));
                mb.moves.push(MoveOp::Steer {
                    from: pl as u16,
                    next: next as u16,
                    dest,
                    fl,
                });
            } else {
                inc_row[next] = Some(fl);
                if next < 64 {
                    *inc_mask |= 1 << next;
                }
            }
        }
        // Pass 1: sweep and classify. For programs of ≤ 64 stages the
        // park mask (filled by last cycle's compaction) says exactly
        // which lane slots are occupied; draining its set bits
        // highest-first reproduces the scalar stage-descending sweep
        // while skipping the empty slots — each of which is otherwise a
        // strided load of a fat `Option<Flight>`, the dominant move-
        // phase cost on sparse workloads. Wider programs keep the full
        // scan.
        if self.stages <= 64 {
            for (pl, inc_row) in incoming.iter_mut().enumerate() {
                let mut mask = std::mem::take(&mut self.park_mask[pl]);
                while mask != 0 {
                    let st = 63 - mask.leading_zeros() as usize;
                    mask ^= 1 << st;
                    let fl = self.lanes[pl][st]
                        .take()
                        .expect("park mask bit set on an empty lane slot");
                    classify(
                        self.stages,
                        pl,
                        st,
                        fl,
                        inc_row,
                        &mut self.inc_mask[pl],
                        &mut mb,
                    );
                }
                debug_assert!(
                    self.lanes[pl].iter().all(|s| s.is_none()),
                    "parked flight missing from the park mask"
                );
            }
        } else {
            for (pl, inc_row) in incoming.iter_mut().enumerate() {
                for st in (0..self.stages).rev() {
                    let Some(fl) = self.lanes[pl][st].take() else {
                        continue;
                    };
                    classify(
                        self.stages,
                        pl,
                        st,
                        fl,
                        inc_row,
                        &mut self.inc_mask[pl],
                        &mut mb,
                    );
                }
            }
        }
        // Pass 2: crossbar grants, stage-major — one crossbar's
        // counters at a time instead of all `stages` per pipeline.
        for (st, steers) in mb.stage_steers.iter_mut().enumerate() {
            for (from, to) in steers.drain(..) {
                self.crossbars[st].route(PipelineId(from), PipelineId(to));
            }
        }
        // Pass 3: deferred effects, in sweep order.
        for op in mb.moves.drain(..) {
            match op {
                MoveOp::Complete { pl, fl } => self.complete(pl as usize, fl),
                MoveOp::Steer {
                    from,
                    next,
                    dest,
                    fl,
                } => {
                    if S::ENABLED && dest.0 != from {
                        TraceCtx::new(self.cycle, from, next)
                            .emit(&mut self.sink, EventKind::Steer { from, to: dest.0 });
                    }
                    let next = next as usize;
                    if dest.index() != from as usize {
                        self.report.steered += 1;
                        if F::ENABLED {
                            let delay = self.faults.grant_delay();
                            if delay > 0 {
                                // Injected grant latency: the crossbar
                                // holds the steered packet; its phantom
                                // keeps its place in the serial order.
                                self.report.fault.delayed_grants += 1;
                                self.pending_grants
                                    .push_back((self.cycle + delay, dest, next, fl));
                                continue;
                            }
                        }
                    }
                    self.enqueue_stateful(dest, next, fl);
                }
            }
        }
        self.move_buf = mb;
    }

    /// The SoA work phase on the sequential engine: build one
    /// [`PipeView`] per pipeline over the switch's own arrays, run the
    /// sweep/execute/compact passes, then apply the per-pipeline side
    /// effects in ascending order — the scalar effect order.
    fn work_batch_seq(&mut self, incoming: &mut [Vec<Option<Flight>>]) {
        let Some(bs) = self.batch_seq.as_mut() else {
            // Guarded by `use_batch` + the sequential-engine dispatch in
            // `step`; silently skipping the work phase would corrupt the
            // run, so this must stay loud.
            unreachable!("work_batch_seq called without batch buffers");
        };
        let ctx = WorkCtx {
            prog: &self.prog,
            index_map: &self.index_map,
            phantoms: self.cfg.phantoms,
            starvation_threshold: self.cfg.starvation_threshold,
            clen: cycle_len(self.timing_k),
            cycle: self.cycle,
            prologue: self.prologue,
            stalls: self.faults.active_stalls(),
            record_detail: self.cfg.record_detail,
        };
        let mut views: Vec<PipeView<'_>> = incoming
            .iter_mut()
            .zip(self.queues.iter_mut())
            .zip(self.lanes.iter_mut())
            .zip(self.regs.iter_mut())
            .zip(bs.fx.iter_mut())
            .zip(bs.events.iter_mut())
            .zip(self.park_mask.iter_mut())
            .zip(self.inc_mask.iter_mut())
            .zip(self.queue_mask.iter_mut())
            .enumerate()
            .map(
                |(pl, ((((((((inc_row, queues), lanes), regs), fx), events), park), inc), qm))| {
                    PipeView {
                        pl,
                        inc_row: &mut inc_row[..],
                        queues: &mut queues[..],
                        lanes: &mut lanes[..],
                        regs: &mut regs[..],
                        fx,
                        events,
                        park,
                        inc: std::mem::take(inc),
                        qmask: qm,
                    }
                },
            )
            .collect();
        batch_work::<S>(&ctx, &mut views, &mut bs.pack);
        drop(views);
        for (pl, fx) in bs.fx.iter_mut().enumerate() {
            if S::ENABLED {
                for ev in bs.events[pl].drain(..) {
                    self.sink.emit(ev);
                }
            }
            apply_work_fx(
                fx,
                &mut self.access_ctr,
                &mut self.inflight,
                &mut self.channel,
                &mut self.report,
            );
        }
    }

    /// The work phase on the parallel engine: move each pipeline's
    /// state into a [`Unit`], shard the units contiguously over the
    /// worker pool, barrier on the results, and merge them back in
    /// ascending pipeline order (state restore, trace-event replay,
    /// side-effect application) so the outcome is bit-identical to the
    /// sequential engine's.
    fn work_parallel(&mut self, incoming: &mut [Vec<Option<Flight>>]) {
        let Some(par) = self.par.as_mut() else {
            // Guarded by the `par.is_some()` check in `step`; silently
            // skipping the work phase would corrupt the run, so this
            // must stay loud.
            unreachable!("work_parallel called without a parallel engine");
        };
        let stalls: Vec<(u16, u16)> = self.faults.active_stalls().to_vec();
        let shared = Arc::clone(&par.shared);
        // A shared pool may have more workers than this switch has
        // pipelines; never build more jobs than units (a job per worker
        // with some empty would still be correct, but chunking by
        // `min` keeps job sizes contiguous and non-degenerate).
        let workers = par.pool.workers().min(self.k).max(1);
        let mut units = Vec::with_capacity(self.k);
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            let (fx, events) = par.spare.pop().unwrap_or_default();
            units.push(Unit {
                pl,
                inc_row: std::mem::take(inc_row),
                queues: std::mem::take(&mut self.queues[pl]),
                lanes: std::mem::take(&mut self.lanes[pl]),
                regs: std::mem::take(&mut self.regs[pl]),
                fx,
                events,
                park: 0,
                inc: std::mem::take(&mut self.inc_mask[pl]),
                qmask: self.queue_mask[pl],
            });
        }
        // Contiguous range shards in pipeline order: worker order ==
        // pipeline order, so flattening the results restores ascending
        // order.
        let batch_mode = shared.batch;
        let mut it = units.into_iter();
        let mut jobs = Vec::with_capacity(workers);
        for range in shard_ranges(self.k, workers) {
            jobs.push(Job {
                shared: Arc::clone(&shared),
                index_map: Arc::clone(&self.index_map),
                cycle: self.cycle,
                units: it.by_ref().take(range.len()).collect(),
                stalls: stalls.clone(),
                batch: batch_mode.then(|| par.spare_batch.pop().unwrap_or_default()),
            });
        }
        // `Parallel(n)` resolving to a single worker (n = 1, or k = 1)
        // degenerates to sequential work with a rendezvous barrier on
        // top — two thread handoffs per cycle for nothing, ~27× on
        // per-cycle p50 at k = 1. Run the lone job inline on the
        // coordinator instead: `run_job` is a plain fn, so this is the
        // exact computation the worker would have done.
        let outs = if jobs.len() == 1 {
            jobs.drain(..).map(run_job).collect()
        } else {
            par.pool.exchange(jobs)
        };
        for (units_out, pack) in outs {
            if let Some(pack) = pack {
                par.spare_batch.push(pack);
            }
            for mut unit in units_out {
                let pl = unit.pl;
                debug_assert!(unit.inc_row.iter().all(|s| s.is_none()));
                self.queues[pl] = std::mem::take(&mut unit.queues);
                self.lanes[pl] = std::mem::take(&mut unit.lanes);
                self.regs[pl] = std::mem::take(&mut unit.regs);
                self.park_mask[pl] = unit.park;
                self.queue_mask[pl] = unit.qmask;
                // Hand the (all-`None`) row back so `step` can recycle
                // the allocation via `inc_buf`.
                incoming[pl] = std::mem::take(&mut unit.inc_row);
                if S::ENABLED {
                    for ev in unit.events.drain(..) {
                        self.sink.emit(ev);
                    }
                }
                apply_work_fx(
                    &mut unit.fx,
                    &mut self.access_ctr,
                    &mut self.inflight,
                    &mut self.channel,
                    &mut self.report,
                );
                par.spare.push((unit.fx, unit.events));
            }
        }
    }

    /// A data packet arrives at the stateful stage it is tagged for:
    /// replace its phantom (or queue directly when phantoms are off).
    fn enqueue_stateful(&mut self, dest: PipelineId, st: usize, mut fl: Flight) {
        // Conservative: set before knowing whether the enqueue sticks —
        // a spurious bit costs one lazy clear at the next sweep.
        if st < 64 {
            self.queue_mask[dest.index()] |= 1 << st;
        }
        // ECN-inspired backpressure (§3.4): mark the packet if the queue
        // it joins has built past the threshold.
        if let Some(thr) = self.cfg.ecn_threshold {
            if self.queues[dest.index()][st].len() > thr {
                fl.pkt.ecn = true;
            }
        }
        let ctx = TraceCtx::new(self.cycle, dest.0, st as u16);
        if !self.cfg.phantoms {
            // no-D4 ablation: queue in arrival-at-stage order.
            let ts = OrderKey(self.cycle, fl.ingress.0 as u64);
            let lane = fl.ingress;
            if let Err(fl) =
                self.queues[dest.index()][st].push_data(fl, ts, lane, &mut self.sink, ctx)
            {
                self.report.drops.data_fifo_full += 1;
                self.report.count_stage_drop(dest.0, st as u16);
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::Drop {
                            pkt: fl.pkt.id,
                            cause: DropCause::FifoFull,
                        },
                    );
                }
                self.drop_remaining(fl, st);
            }
            return;
        }
        // All tags for this stage (possibly several: speculative
        // branches or overlapping exact plans), collected into a
        // reusable scratch — this runs once per stateful arrival.
        let mut keys = std::mem::take(&mut self.key_scratch);
        keys.clear();
        keys.extend(
            fl.pkt
                .tags
                .iter()
                .take_while(|t| t.stage.index() == st)
                .map(|t| fl.key(t)),
        );
        debug_assert!(!keys.is_empty());
        if F::ENABLED && !self.lost.is_empty() && self.lost.remove(&keys[0]) {
            // Injected-fault recovery: the phantom never reached this
            // FIFO, but the loss was recorded, so the data packet
            // re-enters the serial order directly at its original
            // entry-order key — exactly the slot its phantom would have
            // frozen, so C1 is preserved (older queued phantoms still
            // block it; see `LogicalFifo::push_recovered`).
            let ts = fl.order;
            for k in &keys[1..] {
                self.lost.remove(k); // siblings ride in with the data
            }
            self.report.fault.phantoms_recovered += 1;
            self.queues[dest.index()][st].push_recovered(keys[0], fl, ts, &mut self.sink, ctx);
            self.key_scratch = keys;
            return;
        }
        match self.queues[dest.index()][st].insert_data(keys[0], fl, &mut self.sink, ctx) {
            Ok(()) => {
                // Sibling phantoms (speculative branches / overlapping
                // plans) stay in place: they keep blocking their index
                // until this packet is actually served and performs the
                // accesses, and are reclaimed then (see `process`).
                // Cancelling them here would let a later packet overtake
                // the not-yet-executed access in per-index scheduling.
                if F::ENABLED && !self.lost.is_empty() {
                    for k in &keys[1..] {
                        self.lost.remove(k); // lost siblings need no recovery
                    }
                }
            }
            Err(fl) => {
                // Phantom was dropped upstream: the drop cascades.
                self.report.drops.data_no_phantom += 1;
                self.report.count_stage_drop(dest.0, st as u16);
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::Drop {
                            pkt: fl.pkt.id,
                            cause: DropCause::NoPhantom,
                        },
                    );
                }
                for &k in &keys[1..] {
                    self.queues[dest.index()][st].cancel(k, true, &mut self.sink, ctx);
                }
                self.drop_remaining(fl, st);
            }
        }
        self.key_scratch = keys;
    }

    /// Cleans up after dropping a data packet at stage `st`: cancel all
    /// of its not-yet-consumed phantoms (in FIFOs or still on the
    /// channel) and release its in-flight counters.
    fn drop_remaining(&mut self, fl: Flight, st: usize) {
        for tag in &fl.pkt.tags {
            self.dec_inflight(tag);
            if tag.stage.index() <= st {
                continue; // this stage's keys were handled by the caller
            }
            let key = fl.key(tag);
            if F::ENABLED && !self.lost.is_empty() && self.lost.remove(&key) {
                // The phantom was already lost to a fault: there is
                // nothing left to cancel anywhere.
                continue;
            }
            let ctx = TraceCtx::new(self.cycle, tag.pipeline.0, tag.stage.0);
            if !self.queues[tag.pipeline.index()][tag.stage.index()].cancel(
                key,
                true,
                &mut self.sink,
                ctx,
            ) {
                // Still on the channel: discard at delivery.
                self.cancelled.insert(key);
            }
        }
    }

    fn dec_inflight(&mut self, tag: &AccessTag) {
        if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
            let c = &mut self.inflight[tag.reg.index()][tag.index as usize];
            *c = c.saturating_sub(1);
        }
    }

    /// Fires the fault schedule's due faults at the top of a cycle:
    /// classifies each for the recovery accounting (`injected ==
    /// recovered + degraded` by construction), emits `FaultInjected`
    /// trace events, marks killed pipelines dead, and advances the
    /// degradation machinery. Only called when `F::ENABLED`.
    fn begin_faults(&mut self) {
        for fired in self.faults.begin_cycle(self.cycle) {
            self.report.fault.injected += 1;
            match fired.kind.class() {
                FaultClass::Recovered => self.report.fault.recovered += 1,
                FaultClass::Degraded => self.report.fault.degraded += 1,
            }
            if S::ENABLED {
                TraceCtx::new(self.cycle, NO_LOC, NO_LOC).emit(
                    &mut self.sink,
                    EventKind::FaultInjected {
                        code: fired.kind.code(),
                        param: fired.kind.param(),
                    },
                );
            }
            if let FaultKind::PipelineFail { pipeline } = fired.kind {
                let p = pipeline as usize;
                if p < self.k && !self.dead[p] {
                    self.dead[p] = true;
                    self.report.fault.dead_pipelines.push(pipeline);
                }
            }
        }
        if self.dead.iter().any(|&d| d) {
            self.report.fault.degraded_cycles += 1;
            self.evacuate_dead(false);
        }
    }

    /// Applies injected phantom faults to a delivery coming off the
    /// channel. Returns `true` when the phantom was consumed by a fault
    /// (recoverable loss, silent loss, or forced FIFO overflow) and
    /// must not be enqueued.
    fn phantom_faulted(&mut self, msg: &PhantomMsg, stage: u16, ctx: TraceCtx) -> bool {
        match self.faults.phantom_fate(fault_key_hash(&msg.key)) {
            PhantomFate::Keep => {}
            PhantomFate::DropRecoverable => {
                // Recorded loss: the data packet re-enters FIFO order
                // via the recovery path when it arrives.
                self.lost.insert(msg.key);
                self.report.fault.phantoms_dropped += 1;
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::FaultPhantomLost { key: tkey(msg.key) },
                    );
                }
                return true;
            }
            PhantomFate::DropSilent => {
                // Deliberately unrecorded loss: the auditor's negative
                // control. The data packet takes the orphan path and the
                // offline audit must flag the stream.
                self.report.fault.phantoms_dropped += 1;
                return true;
            }
        }
        if self.faults.fifo_overflow(msg.dest.0, stage) {
            // Forced overflow pressure: the FIFO behaves as if full,
            // but the loss is recorded and recovered like a dropped
            // phantom (the paper's overflow handling keeps C1 by
            // conservative re-serialization of the data packet).
            self.lost.insert(msg.key);
            self.report.fault.phantoms_dropped += 1;
            if S::ENABLED {
                ctx.emit(
                    &mut self.sink,
                    EventKind::FaultPhantomLost { key: tkey(msg.key) },
                );
            }
            return true;
        }
        false
    }

    /// Moves sharded indexes off dead pipelines onto the least-loaded
    /// survivor via the D2 remap path (same atomic state movement, same
    /// `RemapMove` evidence). Respects the in-flight guard unless
    /// `force` — the end-of-run sweep, when nothing is in flight by
    /// construction — and emits `PipelineEvacuated` once a dead
    /// pipeline no longer owns any index.
    fn evacuate_dead(&mut self, force: bool) {
        if !self.dead.iter().any(|&d| d) {
            return;
        }
        for ri in 0..self.prog.regs.len() {
            if !self.prog.regs[ri].shardable {
                continue;
            }
            // Survivor loads for this register, by mapped-index count.
            let mut loads = vec![0u64; self.k];
            for &pl in self.index_map[ri].iter() {
                if (pl as usize) < self.k {
                    loads[pl as usize] += 1;
                }
            }
            for idx in 0..self.index_map[ri].len() {
                let from = self.index_map[ri][idx] as usize;
                if from >= self.k || !self.dead[from] {
                    continue;
                }
                if !force && self.inflight[ri][idx] > 0 {
                    continue; // in-flight guard: move once quiesced
                }
                // Least-loaded alive pipeline; smallest id on ties.
                let Some(to) = (0..self.k)
                    .filter(|&p| !self.dead[p])
                    .min_by_key(|&p| (loads[p], p))
                else {
                    return; // every pipeline is dead: nowhere to go
                };
                loads[from] = loads[from].saturating_sub(1);
                loads[to] += 1;
                self.apply_move(ri, shard::Move { index: idx, to });
                self.evac_counts[from] += 1;
                self.report.fault.evacuated_indexes += 1;
            }
        }
        // Announce each dead pipeline once it owns nothing.
        for p in 0..self.k {
            if !self.dead[p] || self.evac_done[p] {
                continue;
            }
            let clean = (0..self.prog.regs.len())
                .filter(|&ri| self.prog.regs[ri].shardable)
                .all(|ri| self.index_map[ri].iter().all(|&pl| pl as usize != p));
            if clean {
                self.evac_done[p] = true;
                if S::ENABLED {
                    TraceCtx::new(self.cycle, p as u16, NO_LOC).emit(
                        &mut self.sink,
                        EventKind::PipelineEvacuated {
                            pipeline: p as u16,
                            indexes: self.evac_counts[p],
                        },
                    );
                }
            }
        }
    }

    /// A packet exits the final stage.
    fn complete(&mut self, pl: usize, fl: Flight) {
        if S::ENABLED {
            TraceCtx::new(self.cycle, pl as u16, (self.stages - 1) as u16)
                .emit(&mut self.sink, EventKind::Egress { pkt: fl.pkt.id });
        }
        debug_assert!(
            fl.pkt.tags.is_empty(),
            "packet exited with unvisited tags: {:?}",
            fl.pkt.tags
        );
        if self.cfg.record_detail {
            self.report.result.outputs.insert(
                fl.pkt.id,
                fl.pkt.fields[..self.prog.declared_fields].to_vec(),
            );
            self.report.completions.push((fl.pkt.id, self.cycle));
        }
        self.report.completed += 1;
        if fl.pkt.ecn {
            self.report.ecn_marked += 1;
        }
        self.egress_buf.push((fl.pkt, self.cycle));
    }

    /// Background dynamic sharding (Figure 6 / LPT), with the in-flight
    /// guard and atomic state movement.
    fn remap(&mut self) {
        if F::ENABLED && self.faults.take_remap_abort() {
            // Injected control-plane failure: this remap round never
            // happens. Harmless by design — sharding is a performance
            // optimization, not a correctness mechanism.
            self.report.fault.aborted_remaps += 1;
            return;
        }
        for ri in 0..self.prog.regs.len() {
            if !self.prog.regs[ri].shardable {
                continue;
            }
            match self.cfg.sharding {
                ShardingMode::Dynamic => {
                    if let Some(mv) = shard::remap_heuristic(
                        &self.index_map[ri],
                        &self.access_ctr[ri],
                        &self.inflight[ri],
                        self.k,
                    ) {
                        // Never shard onto a dead pipeline.
                        if !(F::ENABLED && self.dead[mv.to]) {
                            self.apply_move(ri, mv);
                        }
                    }
                    // Counters reset each iteration (§3.4).
                    self.access_ctr[ri].iter_mut().for_each(|c| *c = 0);
                }
                ShardingMode::IdealPeriodic => {
                    // Ideal re-sharding: the Figure 6 balancer iterated
                    // to a fixed point over *cumulative* counters (no
                    // per-window reset). Per-window samples are noise at
                    // this granularity, and chasing them costs more
                    // throughput than it recovers; cumulative loads make
                    // the fixed point stable, so a balanced map is left
                    // untouched.
                    for mv in shard::remap_to_fixpoint(
                        &self.index_map[ri],
                        &self.access_ctr[ri],
                        &self.inflight[ri],
                        self.k,
                        64,
                    ) {
                        if F::ENABLED && self.dead[mv.to] {
                            continue; // never shard onto a dead pipeline
                        }
                        self.apply_move(ri, mv);
                    }
                }
                ShardingMode::Static | ShardingMode::Pinned => {}
            }
        }
    }

    fn apply_move(&mut self, reg: usize, mv: shard::Move) {
        // `make_mut` does not copy in steady state: parallel-engine
        // jobs return their `Arc` snapshot before the cycle ends, so
        // the coordinator holds the only reference at remap time.
        let map = Arc::make_mut(&mut self.index_map);
        let from = map[reg][mv.index] as usize;
        let value = self.regs[from][reg][mv.index];
        self.regs[mv.to][reg][mv.index] = value;
        map[reg][mv.index] = mv.to as u16;
        if S::ENABLED {
            TraceCtx::new(self.cycle, NO_LOC, NO_LOC).emit(
                &mut self.sink,
                EventKind::RemapMove {
                    reg: RegId(reg as u16),
                    index: mv.index as u32,
                    from: from as u16,
                    to: mv.to as u16,
                },
            );
        }
        self.report.remap_moves += 1;
    }

    /// Finalizes the report: aggregate the active register copies into
    /// the logical final state, collect queue statistics.
    fn finish(mut self) -> (RunReport, S) {
        if F::ENABLED {
            // End-of-run sweep: the switch has drained, so every
            // in-flight guard is released and any index still pinned to
            // a dead pipeline moves now. The post-run index map never
            // references a dead pipeline.
            self.evacuate_dead(true);
            self.report.fault.dead_pipelines.sort_unstable();
        }
        let mut final_regs = Vec::with_capacity(self.prog.regs.len());
        for (ri, meta) in self.prog.regs.iter().enumerate() {
            let mut arr = Vec::with_capacity(meta.size as usize);
            for idx in 0..meta.size as usize {
                let pl = if meta.shardable {
                    self.index_map[ri][idx] as usize
                } else {
                    0
                };
                arr.push(self.regs[pl][ri][idx]);
            }
            final_regs.push(arr);
        }
        self.report.result.final_regs = final_regs;
        self.report.result.processed = self.report.completed;
        self.report.cycles = self.cycle;
        self.report.max_queue_depth = self
            .queues
            .iter()
            .flatten()
            .map(|q| q.max_occupancy())
            .max()
            .unwrap_or(0);
        (self.report, self.sink)
    }
}

// ------------------------------------------------------------------
// Checkpoint / restore / hot swap (plain-data mirrors in crate::state)
// ------------------------------------------------------------------

fn snap_key(k: PhantomKey) -> KeySnap {
    KeySnap {
        pkt: k.pkt,
        reg: k.reg,
        index: k.index,
    }
}

fn unsnap_key(k: KeySnap) -> PhantomKey {
    PhantomKey {
        pkt: k.pkt,
        reg: k.reg,
        index: k.index,
    }
}

fn snap_flight(f: &Flight) -> FlightState {
    FlightState {
        pkt: f.pkt.clone(),
        order: (f.order.0, f.order.1),
        ingress: f.ingress.0,
    }
}

fn unsnap_flight(f: FlightState) -> Flight {
    Flight {
        pkt: f.pkt,
        order: OrderKey(f.order.0, f.order.1),
        ingress: PipelineId(f.ingress),
    }
}

fn snap_entry(e: &Entry<Flight>) -> EntrySnap {
    match e {
        Entry::Phantom { key, ts } => EntrySnap::Phantom {
            key: snap_key(*key),
            ts: (ts.0, ts.1),
        },
        Entry::Data { item, ts } => EntrySnap::Data {
            item: snap_flight(item),
            ts: (ts.0, ts.1),
        },
        Entry::Stale { ts, free } => EntrySnap::Stale {
            ts: (ts.0, ts.1),
            free: *free,
        },
    }
}

fn unsnap_entry(e: EntrySnap) -> Entry<Flight> {
    match e {
        EntrySnap::Phantom { key, ts } => Entry::Phantom {
            key: unsnap_key(key),
            ts: OrderKey(ts.0, ts.1),
        },
        EntrySnap::Data { item, ts } => Entry::Data {
            item: unsnap_flight(item),
            ts: OrderKey(ts.0, ts.1),
        },
        EntrySnap::Stale { ts, free } => Entry::Stale {
            ts: OrderKey(ts.0, ts.1),
            free,
        },
    }
}

fn snap_fifo(f: &LogicalFifo<Flight>) -> FifoSnap {
    let parts = f.snapshot_parts();
    FifoSnap {
        capacity: parts.capacity,
        lanes: parts
            .lanes
            .into_iter()
            .map(|l| LaneSnap {
                head_seq: l.head_seq,
                max_occupancy: l.max_occupancy,
                entries: l.entries.iter().map(snap_entry).collect(),
            })
            .collect(),
        recovered: parts.recovered.iter().map(snap_entry).collect(),
        max_recovered: parts.max_recovered,
        stats: {
            let s = parts.stats;
            StatsSnap {
                phantom_drops: s.phantom_drops,
                data_drops_no_phantom: s.data_drops_no_phantom,
                data_drops_full: s.data_drops_full,
                stale_cycles: s.stale_cycles,
                blocked_cycles: s.blocked_cycles,
                recovered: s.recovered,
            }
        },
    }
}

/// Rebuilds a logical FIFO; `indexed` selects the service-scan mode of
/// the *target* switch (it is an execution detail, not state, so a
/// scalar-path snapshot restores cleanly into a batch-path switch and
/// vice versa).
fn unsnap_fifo(s: FifoSnap, indexed: bool) -> LogicalFifo<Flight> {
    LogicalFifo::from_parts(FifoParts {
        capacity: s.capacity,
        lanes: s
            .lanes
            .into_iter()
            .map(|l| LaneParts {
                head_seq: l.head_seq,
                max_occupancy: l.max_occupancy,
                entries: l.entries.into_iter().map(unsnap_entry).collect(),
            })
            .collect(),
        recovered: s.recovered.into_iter().map(unsnap_entry).collect(),
        max_recovered: s.max_recovered,
        stats: FifoStats {
            phantom_drops: s.stats.phantom_drops,
            data_drops_no_phantom: s.stats.data_drops_no_phantom,
            data_drops_full: s.stats.data_drops_full,
            stale_cycles: s.stats.stale_cycles,
            blocked_cycles: s.stats.blocked_cycles,
            recovered: s.stats.recovered,
        },
        indexed,
    })
}

fn snap_queue(q: &StageQueue) -> QueueSnap {
    match q {
        StageQueue::Logical(f) => QueueSnap::Logical(snap_fifo(f)),
        StageQueue::PerIndex {
            subs,
            max_total,
            capacity,
        } => QueueSnap::PerIndex {
            subs: subs.iter().map(|(i, f)| (*i, snap_fifo(f))).collect(),
            max_total: *max_total,
            capacity: *capacity,
        },
    }
}

fn unsnap_queue(q: QueueSnap, cfg: &SwitchConfig) -> Result<StageQueue, RestoreError> {
    match q {
        QueueSnap::Logical(s) => {
            if cfg.per_index_fifos {
                return Err(RestoreError::Incompatible(
                    "logical-FIFO snapshot cannot restore into a per-index configuration".into(),
                ));
            }
            if s.lanes.len() != cfg.pipelines {
                return Err(RestoreError::Incompatible(format!(
                    "FIFO snapshot has {} lanes, switch has {} pipelines",
                    s.lanes.len(),
                    cfg.pipelines
                )));
            }
            Ok(StageQueue::Logical(unsnap_fifo(
                s,
                cfg.exec != ExecPath::Scalar,
            )))
        }
        QueueSnap::PerIndex {
            subs,
            max_total,
            capacity,
        } => {
            if !cfg.per_index_fifos {
                return Err(RestoreError::Incompatible(
                    "per-index snapshot cannot restore into a logical-FIFO configuration".into(),
                ));
            }
            for (i, s) in &subs {
                if s.lanes.len() != 1 {
                    return Err(RestoreError::Incompatible(format!(
                        "per-index sub-queue {i} has {} lanes, expected 1",
                        s.lanes.len()
                    )));
                }
            }
            Ok(StageQueue::PerIndex {
                subs: subs
                    .into_iter()
                    .map(|(i, s)| (i, unsnap_fifo(s, true)))
                    .collect(),
                max_total,
                capacity,
            })
        }
    }
}

fn snap_report(r: &RunReport) -> ReportSnap {
    let mut outputs: Vec<(PacketId, Vec<Value>)> = r
        .result
        .outputs
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    outputs.sort_unstable_by_key(|(k, _)| *k);
    let mut access_log: Vec<(RegId, u32, Vec<PacketId>)> = r
        .result
        .access_log
        .iter()
        .map(|((reg, idx), v)| (*reg, *idx, v.clone()))
        .collect();
    access_log.sort_unstable_by_key(|&(reg, idx, _)| (reg, idx));
    ReportSnap {
        result: ResultSnap {
            final_regs: r.result.final_regs.clone(),
            outputs,
            access_log,
            processed: r.result.processed,
        },
        offered: r.offered,
        completed: r.completed,
        drops: DropsSnap {
            phantom_fifo_full: r.drops.phantom_fifo_full,
            data_no_phantom: r.drops.data_no_phantom,
            data_fifo_full: r.drops.data_fifo_full,
            starvation: r.drops.starvation,
        },
        cycles: r.cycles,
        input_duration: r.input_duration,
        completions: r.completions.clone(),
        max_queue_depth: r.max_queue_depth,
        steered: r.steered,
        phantoms_generated: r.phantoms_generated,
        wasted_cycles: r.wasted_cycles,
        remap_moves: r.remap_moves,
        ecn_marked: r.ecn_marked,
        cycle_len: r.cycle_len,
        stage_drops: r
            .stage_drops
            .iter()
            .map(|(&(pl, st), &n)| (pl, st, n))
            .collect(),
        fault: {
            let f = &r.fault;
            FaultSnap {
                injected: f.injected,
                recovered: f.recovered,
                degraded: f.degraded,
                degraded_cycles: f.degraded_cycles,
                evacuated_indexes: f.evacuated_indexes,
                phantoms_dropped: f.phantoms_dropped,
                phantoms_recovered: f.phantoms_recovered,
                dead_pipelines: f.dead_pipelines.clone(),
                stall_cycles: f.stall_cycles,
                delayed_grants: f.delayed_grants,
                aborted_remaps: f.aborted_remaps,
            }
        },
    }
}

fn unsnap_report(s: ReportSnap) -> RunReport {
    let mut result = RunResult {
        final_regs: s.result.final_regs,
        outputs: Default::default(),
        access_log: Default::default(),
        processed: s.result.processed,
    };
    for (k, v) in s.result.outputs {
        result.outputs.insert(k, v);
    }
    for (reg, idx, v) in s.result.access_log {
        result.access_log.insert((reg, idx), v);
    }
    RunReport {
        result,
        offered: s.offered,
        completed: s.completed,
        drops: crate::report::DropCounts {
            phantom_fifo_full: s.drops.phantom_fifo_full,
            data_no_phantom: s.drops.data_no_phantom,
            data_fifo_full: s.drops.data_fifo_full,
            starvation: s.drops.starvation,
        },
        cycles: s.cycles,
        input_duration: s.input_duration,
        completions: s.completions,
        max_queue_depth: s.max_queue_depth,
        steered: s.steered,
        phantoms_generated: s.phantoms_generated,
        wasted_cycles: s.wasted_cycles,
        remap_moves: s.remap_moves,
        ecn_marked: s.ecn_marked,
        cycle_len: s.cycle_len,
        stage_drops: s
            .stage_drops
            .into_iter()
            .map(|(pl, st, n)| ((pl, st), n))
            .collect(),
        fault: crate::report::FaultReport {
            injected: s.fault.injected,
            recovered: s.fault.recovered,
            degraded: s.fault.degraded,
            degraded_cycles: s.fault.degraded_cycles,
            evacuated_indexes: s.fault.evacuated_indexes,
            phantoms_dropped: s.fault.phantoms_dropped,
            phantoms_recovered: s.fault.phantoms_recovered,
            dead_pipelines: s.fault.dead_pipelines,
            stall_cycles: s.fault.stall_cycles,
            delayed_grants: s.fault.delayed_grants,
            aborted_remaps: s.fault.aborted_remaps,
        },
    }
}

impl<S: TraceSink, F: FaultInjector> Mp5Switch<S, F> {
    /// Captures the complete live state at the current cycle boundary.
    ///
    /// Must be called **between** `tick()` calls — every per-cycle
    /// scratch buffer is empty then, so [`SwitchState`] plus the
    /// program and configuration fully determine the rest of the run:
    /// a switch rebuilt via [`Mp5Switch::try_restore_with`] continues
    /// **bit-identically** (same `RunReport`, same traced
    /// `stream_hash`) on either exec path and either engine.
    ///
    /// Emits a `SnapshotTaken` lifecycle event (traced runs only);
    /// lifecycle events are excluded from `stream_hash` and ignored by
    /// the auditor, so checkpointing never perturbs the evidence chain.
    pub fn extract_state(&mut self, seq: u64) -> SwitchState {
        if S::ENABLED {
            TraceCtx::new(self.cycle, NO_LOC, NO_LOC)
                .emit(&mut self.sink, EventKind::SnapshotTaken { seq });
        }
        let mut cancelled: Vec<KeySnap> = self.cancelled.iter().copied().map(snap_key).collect();
        cancelled.sort_unstable();
        let mut lost: Vec<KeySnap> = self.lost.iter().copied().map(snap_key).collect();
        lost.sort_unstable();
        SwitchState {
            cycle: self.cycle,
            rr: self.rr,
            regs: self.regs.clone(),
            index_map: (*self.index_map).clone(),
            access_ctr: self.access_ctr.clone(),
            inflight: self.inflight.clone(),
            queues: self
                .queues
                .iter()
                .map(|row| row.iter().map(snap_queue).collect())
                .collect(),
            lanes: self
                .lanes
                .iter()
                .map(|row| row.iter().map(|s| s.as_ref().map(snap_flight)).collect())
                .collect(),
            channel: ChannelSnap {
                stages: self.channel.stages(),
                max_in_flight: self.channel.max_in_flight(),
                delivered: self.channel.delivered(),
                flights: self
                    .channel
                    .snapshot_flights()
                    .into_iter()
                    .map(|(msg, at, dest_stage)| ChannelFlightSnap {
                        key: snap_key(msg.key),
                        ts: (msg.ts.0, msg.ts.1),
                        dest: msg.dest.0,
                        lane: msg.lane.0,
                        at,
                        dest_stage,
                    })
                    .collect(),
            },
            crossbars: self
                .crossbars
                .iter()
                .map(|x| {
                    let (routed, steer_cycles) = x.snapshot();
                    XbarSnap {
                        routed,
                        steer_cycles,
                    }
                })
                .collect(),
            cancelled,
            lost,
            ingress_q: self.ingress_q.iter().map(snap_flight).collect(),
            arrivals: self.arrivals.iter().cloned().collect(),
            pending_grants: self
                .pending_grants
                .iter()
                .map(|(ready, dest, st, fl)| (*ready, dest.0, *st, snap_flight(fl)))
                .collect(),
            egress_buf: self.egress_buf.clone(),
            park_mask: self.park_mask.clone(),
            inc_mask: self.inc_mask.clone(),
            queue_mask: self.queue_mask.clone(),
            dead: self.dead.clone(),
            evac_done: self.evac_done.clone(),
            evac_counts: self.evac_counts.clone(),
            report: snap_report(&self.report),
        }
    }

    /// Builds a fresh switch and injects a checkpointed state into it:
    /// the crash-recovery constructor.
    ///
    /// `prog` and `cfg` must match the checkpointed run's (the snapshot
    /// carries opaque register values and stage-resolved tags, so the
    /// shapes must line up; mismatches are rejected as
    /// [`RestoreError::Incompatible`]). The engine and exec path *may*
    /// differ — both are bit-identical implementations of the same
    /// machine, so a sequential/scalar checkpoint restores into a
    /// parallel/batch switch and continues identically.
    ///
    /// Emits a `Restored` lifecycle event (traced runs only).
    pub fn try_restore_with(
        prog: CompiledProgram,
        cfg: SwitchConfig,
        state: SwitchState,
        sink: S,
        faults: F,
    ) -> Result<Self, RestoreError> {
        let mut sw = Self::build(prog, cfg, sink, faults, None)?;
        sw.inject_state(state)?;
        Ok(sw)
    }

    /// Replaces this freshly built switch's state with a checkpointed
    /// one. Validates every shape against the program/configuration the
    /// switch was built with before touching anything.
    fn inject_state(&mut self, state: SwitchState) -> Result<(), RestoreError> {
        let k = self.k;
        let incompat = |why: String| Err(RestoreError::Incompatible(why));
        if state.regs.len() != k {
            return incompat(format!(
                "snapshot has {} pipelines, switch has {k}",
                state.regs.len()
            ));
        }
        for (pl, regs) in state.regs.iter().enumerate() {
            if regs.len() != self.prog.regs.len() {
                return incompat(format!(
                    "pipeline {pl}: snapshot has {} registers, program declares {}",
                    regs.len(),
                    self.prog.regs.len()
                ));
            }
            for (ri, arr) in regs.iter().enumerate() {
                if arr.len() != self.prog.regs[ri].size as usize {
                    return incompat(format!(
                        "register {ri}: snapshot size {} != program size {}",
                        arr.len(),
                        self.prog.regs[ri].size
                    ));
                }
            }
        }
        if state.index_map.len() != self.prog.regs.len()
            || state
                .index_map
                .iter()
                .zip(&self.prog.regs)
                .any(|(m, r)| m.len() != r.size as usize)
        {
            return incompat("index map shape does not match the program's registers".into());
        }
        if state.access_ctr.len() != self.prog.regs.len()
            || state.inflight.len() != self.prog.regs.len()
        {
            return incompat("counter shape does not match the program's registers".into());
        }
        if state.queues.len() != k || state.queues.iter().any(|row| row.len() != self.stages) {
            return incompat(format!(
                "queue bank is not {k}x{} (pipelines x stages)",
                self.stages
            ));
        }
        if state.lanes.len() != k || state.lanes.iter().any(|row| row.len() != self.stages) {
            return incompat(format!(
                "lane grid is not {k}x{} (pipelines x stages)",
                self.stages
            ));
        }
        if state.channel.stages != self.stages {
            return incompat(format!(
                "channel spans {} stages, program has {}",
                state.channel.stages, self.stages
            ));
        }
        if state.crossbars.len() != self.stages
            || state.crossbars.iter().any(|x| x.routed.len() != k * k)
        {
            return incompat("crossbar statistics are not stages x (k*k)".into());
        }
        for field in [
            state.park_mask.len(),
            state.inc_mask.len(),
            state.queue_mask.len(),
            state.dead.len(),
            state.evac_done.len(),
            state.evac_counts.len(),
        ] {
            if field != k {
                return incompat("per-pipeline vector length does not match".into());
            }
        }
        let mut queues = Vec::with_capacity(k);
        for row in state.queues {
            let mut qrow = Vec::with_capacity(self.stages);
            for q in row {
                qrow.push(unsnap_queue(q, &self.cfg)?);
            }
            queues.push(qrow);
        }
        self.queues = queues;
        self.regs = state.regs;
        self.index_map = Arc::new(state.index_map);
        self.access_ctr = state.access_ctr;
        self.inflight = state.inflight;
        self.lanes = state
            .lanes
            .into_iter()
            .map(|row| row.into_iter().map(|s| s.map(unsnap_flight)).collect())
            .collect();
        self.channel = PhantomChannel::from_parts(
            self.stages,
            state
                .channel
                .flights
                .into_iter()
                .map(|f| {
                    (
                        PhantomMsg {
                            key: unsnap_key(f.key),
                            ts: OrderKey(f.ts.0, f.ts.1),
                            dest: PipelineId(f.dest),
                            lane: PipelineId(f.lane),
                        },
                        f.at,
                        f.dest_stage,
                    )
                })
                .collect(),
            state.channel.max_in_flight,
            state.channel.delivered,
        );
        self.crossbars = state
            .crossbars
            .into_iter()
            .map(|x| Crossbar::from_parts(k, x.routed, x.steer_cycles))
            .collect();
        self.cancelled = state.cancelled.into_iter().map(unsnap_key).collect();
        self.lost = state.lost.into_iter().map(unsnap_key).collect();
        self.ingress_q = state.ingress_q.into_iter().map(unsnap_flight).collect();
        self.arrivals = state.arrivals.into();
        self.pending_grants = state
            .pending_grants
            .into_iter()
            .map(|(ready, dest, st, fl)| (ready, PipelineId(dest), st, unsnap_flight(fl)))
            .collect();
        self.egress_buf = state.egress_buf;
        // The masks are derived occupancy views (batch-path
        // accelerators), not state: the scalar path never maintains
        // them, so rebuild from the restored lanes/queues — a snapshot
        // taken on one exec path then restores cleanly onto the other.
        for pl in 0..k {
            let mut park = 0u64;
            let mut qmask = 0u64;
            for st in 0..self.stages.min(64) {
                if self.lanes[pl][st].is_some() {
                    park |= 1 << st;
                }
                if !self.queues[pl][st].is_empty() {
                    qmask |= 1 << st;
                }
            }
            self.park_mask[pl] = park;
            self.queue_mask[pl] = qmask;
            self.inc_mask[pl] = 0;
        }
        self.dead = state.dead;
        self.evac_done = state.evac_done;
        self.evac_counts = state.evac_counts;
        self.rr = state.rr;
        self.cycle = state.cycle;
        let from_cycle = state.cycle;
        self.report = unsnap_report(state.report);
        if S::ENABLED {
            TraceCtx::new(self.cycle, NO_LOC, NO_LOC)
                .emit(&mut self.sink, EventKind::Restored { from_cycle });
        }
        Ok(())
    }

    /// Swaps in a newly compiled program **without draining the
    /// switch**, at the current cycle boundary.
    ///
    /// The candidate must have an identical *state layout* — packet
    /// field names, stage count, prologue depth, and per-register
    /// `(name, size, home stage, shardable)` — because every queued
    /// phantom, in-flight tag, and index-map entry addresses state by
    /// those coordinates. Anything else (the instruction stream, the
    /// resolution plans, register initial values) may change freely;
    /// packets already past their prologue keep their old-program tags
    /// and complete under them, packets resolved after the swap use the
    /// new program. An incompatible candidate is rejected as a typed
    /// [`SwapError`] and the running switch is left untouched.
    ///
    /// Live register state migrates through the D2 ownership
    /// discipline: each index's active copy (per the index map) is read
    /// out of the old program's register file and written into the new
    /// one's, with the [`SwapReport`] ledger counting both sides —
    /// `migrated == evacuated` and `lost_phantoms == 0` on every
    /// accepted swap. The index map itself does not change, so no
    /// `RemapMove` evidence is emitted and `remap_moves` stays put —
    /// the swap is invisible to the bit-identity contract except for
    /// the `ProgramSwapped` lifecycle event (excluded from
    /// `stream_hash`).
    pub fn hot_swap(&mut self, new_prog: CompiledProgram) -> Result<SwapReport, SwapError> {
        let old = &self.prog;
        if new_prog.field_names != old.field_names {
            return Err(SwapError::FieldLayout {
                old: old.field_names.clone(),
                new: new_prog.field_names.clone(),
            });
        }
        if new_prog.num_stages() != self.stages {
            return Err(SwapError::StageCount {
                old: self.stages,
                new: new_prog.num_stages(),
            });
        }
        if new_prog.resolution.stages != self.prologue {
            return Err(SwapError::PrologueDepth {
                old: self.prologue,
                new: new_prog.resolution.stages,
            });
        }
        if new_prog.regs.len() != old.regs.len() {
            return Err(SwapError::RegisterCount {
                old: old.regs.len(),
                new: new_prog.regs.len(),
            });
        }
        for (i, (o, n)) in old.regs.iter().zip(&new_prog.regs).enumerate() {
            if o.name != n.name || o.size != n.size || o.stage != n.stage {
                return Err(SwapError::RegisterLayout {
                    index: i,
                    detail: format!(
                        "{}[{}]@stage{:?} -> {}[{}]@stage{:?}",
                        o.name, o.size, o.stage, n.name, n.size, n.stage
                    ),
                });
            }
            if o.shardable != n.shardable {
                return Err(SwapError::RegisterLayout {
                    index: i,
                    detail: format!("shardable {} -> {}", o.shardable, n.shardable),
                });
            }
        }
        // Ledger side A: every queued or in-flight phantom must still
        // address a valid register coordinate under the new program.
        // Layout validation guarantees this; the scan is the evidence.
        let valid = |key: &PhantomKey| {
            key.reg.index() < new_prog.regs.len()
                && (key.index == INDEX_ARRAY_LEVEL
                    || (key.index as usize) < new_prog.regs[key.reg.index()].size as usize)
        };
        let mut lost_phantoms = 0u64;
        for row in &self.queues {
            for q in row {
                let fifos: Vec<FifoParts<Flight>> = match q {
                    StageQueue::Logical(f) => vec![f.snapshot_parts()],
                    StageQueue::PerIndex { subs, .. } => {
                        subs.values().map(|f| f.snapshot_parts()).collect()
                    }
                };
                for parts in fifos {
                    for lane in &parts.lanes {
                        for e in &lane.entries {
                            if let Entry::Phantom { key, .. } = e {
                                if !valid(key) {
                                    lost_phantoms += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        for (msg, _, _) in self.channel.snapshot_flights() {
            if !valid(&msg.key) {
                lost_phantoms += 1;
            }
        }
        // Ledger sides B and C: read each index's active copy out of
        // the old register file (evacuated), write it into the new
        // one's (migrated). The index map is untouched, so ownership —
        // and with it C1 — is preserved without any RemapMove.
        let mut migrated = 0u64;
        let mut evacuated = 0u64;
        let mut fresh: Vec<Vec<Vec<Value>>> =
            (0..self.k).map(|_| new_prog.initial_regs()).collect();
        // Indexed loops, not iterators: the destination pipeline `pl`
        // is data-dependent through the index map, so the write lands
        // in a different outer slice than the one being scanned.
        #[allow(clippy::needless_range_loop)]
        for ri in 0..new_prog.regs.len() {
            for idx in 0..new_prog.regs[ri].size as usize {
                let pl = if new_prog.regs[ri].shardable {
                    self.index_map[ri][idx] as usize
                } else {
                    0
                };
                let value = self.regs[pl][ri][idx];
                evacuated += 1;
                fresh[pl][ri][idx] = value;
                migrated += 1;
            }
        }
        self.regs = fresh;
        // The parallel engine's workers read the program through the
        // shared block; republish it with the new program.
        if let Some(par) = self.par.as_mut() {
            let s = &par.shared;
            par.shared = Arc::new(EngineShared {
                prog: new_prog.clone(),
                phantoms: s.phantoms,
                starvation_threshold: s.starvation_threshold,
                clen: s.clen,
                prologue: s.prologue,
                tracing: s.tracing,
                record_detail: s.record_detail,
                batch: s.batch,
            });
        }
        self.prog = new_prog;
        if S::ENABLED {
            TraceCtx::new(self.cycle, NO_LOC, NO_LOC)
                .emit(&mut self.sink, EventKind::ProgramSwapped { migrated });
        }
        Ok(SwapReport {
            cycle: self.cycle,
            migrated,
            evacuated,
            lost_phantoms,
        })
    }

    /// Mutable access to the trace sink (e.g. to flush a file-backed
    /// sink after a checkpoint).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// The fault injector attached to this switch.
    pub fn faults(&self) -> &F {
        &self.faults
    }

    /// Mutable access to the fault injector (e.g. to checkpoint its
    /// replay cursor alongside [`Mp5Switch::extract_state`]).
    pub fn faults_mut(&mut self) -> &mut F {
        &mut self.faults
    }

    /// Discards the switch mid-run and hands back the trace sink with
    /// everything recorded so far. The halt path of a serving process:
    /// checkpoint via [`Mp5Switch::extract_state`], then `abandon` to
    /// persist the partial event stream without running `finish`'s
    /// end-of-run aggregation (the run is not over — a restore will
    /// continue it).
    pub fn abandon(self) -> S {
        self.sink
    }
}

/// Initial index-to-pipeline map per the sharding mode.
fn init_map(
    reg_index: usize,
    meta: &mp5_compiler::program::RegMeta,
    cfg: &SwitchConfig,
    k: usize,
) -> Vec<u16> {
    let n = meta.size as usize;
    if !meta.shardable {
        return vec![0; n];
    }
    match cfg.sharding {
        ShardingMode::Pinned => vec![0; n],
        ShardingMode::Dynamic | ShardingMode::IdealPeriodic => {
            (0..n).map(|i| (i % k) as u16).collect()
        }
        ShardingMode::Static => {
            // "sharded randomly across pipelines at compile time and
            // never updated" — a seeded hash spreads the indexes.
            (0..n)
                .map(|i| {
                    (mp5_types::hash2(cfg.seed as i64 ^ (reg_index as i64) << 32, i as i64)
                        % k as i64) as u16
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_banzai::BanzaiSwitch;
    use mp5_compiler::{compile, Target};
    use mp5_traffic::TraceBuilder;

    const COUNTER: &str = "struct Packet { int seq; };
        int count = 0;
        void func(struct Packet p) { count = count + 1; p.seq = count; }";

    const SHARDED: &str = "struct Packet { int h; int out; };
        int tbl[64] = {0};
        void func(struct Packet p) {
            tbl[p.h % 64] = tbl[p.h % 64] + 1;
            p.out = tbl[p.h % 64];
        }";

    const STATELESS: &str = "struct Packet { int a; int b; };
        void func(struct Packet p) { p.b = p.a * 2 + 1; }";

    fn run_both(
        src: &str,
        cfg: SwitchConfig,
        n: usize,
        seed: u64,
    ) -> (mp5_banzai::RunResult, RunReport) {
        let prog = compile(src, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(n, seed).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::new(prog, cfg).run(trace);
        (reference, report)
    }

    #[test]
    fn try_run_reports_cycle_cap_violation() {
        let prog = compile(COUNTER, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(50, 7).build(nf, |_, _, _| {});
        let cfg = SwitchConfig {
            max_cycles: Some(1),
            ..SwitchConfig::mp5(4)
        };
        let err = Mp5Switch::new(prog, cfg)
            .try_run(trace)
            .expect_err("1-cycle cap cannot drain 50 packets");
        assert_eq!(err.cap, 1);
        assert!(
            err.ingress + err.in_lanes + err.queued + err.channel > 0,
            "violation snapshot locates the stuck work: {err}"
        );
        assert!(err.to_string().contains("exceeded 1 cycles"));
    }

    #[test]
    fn stateless_program_runs_at_line_rate() {
        let (reference, report) = run_both(STATELESS, SwitchConfig::mp5(4), 2000, 1);
        assert_eq!(report.completed, 2000);
        assert!(report.result.equivalent_to(&reference));
        assert!(
            report.normalized_throughput() > 0.95,
            "stateless must hit line rate, got {}",
            report.normalized_throughput()
        );
        assert_eq!(report.phantoms_generated, 0);
    }

    #[test]
    fn global_counter_is_functionally_equivalent() {
        let (reference, report) = run_both(COUNTER, SwitchConfig::mp5(4), 1000, 2);
        assert_eq!(report.completed, 1000);
        assert!(
            report.result.equivalent_to(&reference),
            "MP5 must match the single pipeline exactly"
        );
    }

    #[test]
    fn global_counter_throughput_is_one_over_k() {
        for k in [2usize, 4, 8] {
            let (_, report) = run_both(COUNTER, SwitchConfig::mp5(k), 2000, 3);
            let t = report.normalized_throughput();
            let ideal = 1.0 / k as f64;
            assert!(
                (t - ideal).abs() / ideal < 0.25,
                "k={k}: got {t}, expected ~{ideal} (fundamental limit, §3.5.2)"
            );
        }
    }

    #[test]
    fn sharded_table_is_equivalent_and_fast() {
        let (reference, report) = run_both(SHARDED, SwitchConfig::mp5(4), 4000, 4);
        assert!(report.result.equivalent_to(&reference));
        assert!(
            report.normalized_throughput() > 0.5,
            "64-entry table over 4 pipelines should parallelize, got {}",
            report.normalized_throughput()
        );
        assert!(report.steered > 0, "sharding must steer packets");
    }

    #[test]
    fn no_d4_violates_c1_but_mp5_does_not() {
        // Two stateful stages, Figure-3 style: half the packets
        // serialize on a hot state in the first stateful stage, the
        // rest fly past and (without D4) overtake them at the second —
        // exactly the failure Table II illustrates.
        let src = "struct Packet { int a; int b; int o; };
            int r1[2] = {0};
            int r2[64] = {0};
            void func(struct Packet p) {
                if (p.a == 0) { r1[0] = r1[0] + 1; }
                r2[p.b % 64] = r2[p.b % 64] + 1;
                p.o = r2[p.b % 64];
            }";
        let prog = compile(src, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(4000, 5).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..2);
            f[1] = r.gen_range(0..64);
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());

        let mp5 = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        assert_eq!(
            mp5.result.access_log, reference.access_log,
            "with D4, per-state access order must be the arrival order"
        );
        assert!(mp5.result.equivalent_to(&reference));

        let nod4 = Mp5Switch::new(prog, SwitchConfig::no_d4(4)).run(trace);
        assert_ne!(
            nod4.result.access_log, reference.access_log,
            "without D4 the access order must diverge under contention"
        );
        assert!(
            !nod4.result.state_equivalent_to(&reference),
            "the reordering must be functionally visible in packet outputs"
        );
    }

    #[test]
    fn naive_design_caps_at_one_over_k() {
        let (reference, report) = run_both(SHARDED, SwitchConfig::naive(4), 2000, 6);
        assert!(
            report.result.equivalent_to(&reference),
            "naive is still correct"
        );
        let t = report.normalized_throughput();
        assert!(
            t < 0.30 && t > 0.15,
            "naive with k=4 should sit near 0.25, got {t}"
        );
    }

    #[test]
    fn ideal_at_least_as_fast_as_mp5() {
        let (_, mp5) = run_both(SHARDED, SwitchConfig::mp5(4), 3000, 7);
        let (reference, ideal) = run_both(SHARDED, SwitchConfig::ideal(4), 3000, 7);
        assert!(ideal.result.equivalent_to(&reference));
        assert!(
            ideal.normalized_throughput() >= mp5.normalized_throughput() - 0.05,
            "ideal {} vs mp5 {}",
            ideal.normalized_throughput(),
            mp5.normalized_throughput()
        );
    }

    #[test]
    fn dynamic_beats_static_on_skew() {
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let pat = mp5_traffic::AccessPattern::paper_skewed();
        let trace = TraceBuilder::new(6000, 8).build(nf, |r, _, f| {
            f[0] = pat.draw(64, r) as i64;
        });
        let dynamic = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let static_ = Mp5Switch::new(prog, SwitchConfig::static_shard(4, 99)).run(trace);
        assert!(
            dynamic.normalized_throughput() >= static_.normalized_throughput() * 0.99,
            "dynamic {} should be >= static {}",
            dynamic.normalized_throughput(),
            static_.normalized_throughput()
        );
        assert!(dynamic.remap_moves > 0, "the heuristic must act on skew");
    }

    #[test]
    fn bounded_fifos_drop_under_overload_and_cascade() {
        let (_, report) = run_both(COUNTER, SwitchConfig::mp5(4).with_hardware_fifos(), 3000, 9);
        // The global counter admits 1/k of line rate; bounded FIFOs must
        // shed the excess as phantom + data drops, never deadlock.
        assert!(report.drops.phantom_fifo_full > 0);
        assert!(report.drops.data_no_phantom > 0);
        assert_eq!(report.completed + report.drops.total_data(), report.offered);
    }

    #[test]
    fn speculative_predicate_program_is_equivalent() {
        let src = "struct Packet { int h; int o; };
            int gate = 0;
            int r[32] = {0};
            void func(struct Packet p) {
                gate = 1 - gate;
                if (gate == 1) { r[p.h % 32] = r[p.h % 32] + 1; }
                p.o = gate;
            }";
        let (reference, report) = run_both(src, SwitchConfig::mp5(4), 1500, 10);
        assert!(report.result.equivalent_to(&reference));
        assert!(report.wasted_cycles > 0, "false branches must waste cycles");
    }

    #[test]
    fn pinned_stateful_index_program_is_equivalent() {
        let src = "struct Packet { int h; int o; };
            int ptr = 0;
            int r[16] = {0};
            void func(struct Packet p) {
                ptr = (ptr + 1) % 16;
                r[ptr % 16] = r[ptr % 16] + p.h;
                p.o = ptr;
            }";
        let (reference, report) = run_both(src, SwitchConfig::mp5(4), 1000, 11);
        assert!(report.result.equivalent_to(&reference));
    }

    #[test]
    fn traced_run_matches_untraced_and_records_events() {
        use mp5_trace::{EventKind, MemSink};
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(500, 21).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let plain = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let (traced, sink) =
            Mp5Switch::with_sink(prog, SwitchConfig::mp5(4), MemSink::new()).run_traced(trace);
        // The sink only observes: the run is bit-identical.
        assert_eq!(plain.result.final_regs, traced.result.final_regs);
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.completions, traced.completions);
        let evs = sink.into_events();
        let count = |pred: fn(&EventKind) -> bool| evs.iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::Ingress { .. })), 500);
        assert_eq!(count(|k| matches!(k, EventKind::Egress { .. })), 500);
        assert!(count(|k| matches!(k, EventKind::PhantomEmit { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::DataMatch { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::Steer { .. })) > 0);
        assert_eq!(
            count(|k| matches!(k, EventKind::Execute { queued: true, .. })),
            count(|k| matches!(k, EventKind::PopData { .. })),
            "every queued execution pairs with a FIFO pop"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (_, a) = run_both(SHARDED, SwitchConfig::mp5(4), 1000, 12);
        let (_, b) = run_both(SHARDED, SwitchConfig::mp5(4), 1000, 12);
        assert_eq!(a.result.final_regs, b.result.final_regs);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn larger_packets_reach_line_rate_on_counter() {
        // With 1400 B packets the inter-arrival budget is ~22 slots, so
        // even the serialized counter keeps up at k=4 (Figure 7d's
        // effect).
        let prog = compile(COUNTER, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(1500, 13)
            .size(mp5_traffic::SizeDist::Fixed(1400))
            .build(nf, |_, _, _| {});
        let report = Mp5Switch::new(prog, SwitchConfig::mp5(4)).run(trace);
        assert!(
            report.normalized_throughput() > 0.95,
            "got {}",
            report.normalized_throughput()
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        use crate::config::EngineMode;
        use mp5_trace::{stream_hash, MemSink};
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(1500, 33).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let (seq, seq_sink) =
            Mp5Switch::with_sink(prog.clone(), SwitchConfig::mp5(4), MemSink::new())
                .run_traced(trace.clone());
        for n in [1usize, 2, 3, 4, 7] {
            let cfg = SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(n));
            let (par, par_sink) =
                Mp5Switch::with_sink(prog.clone(), cfg, MemSink::new()).run_traced(trace.clone());
            assert_eq!(seq, par, "RunReport must be bit-identical (n={n})");
            assert_eq!(
                stream_hash(&seq_sink.events),
                stream_hash(&par_sink.events),
                "traced event stream must be bit-identical (n={n})"
            );
        }
    }

    #[test]
    fn parallel_engine_matches_on_every_ablation() {
        use crate::config::EngineMode;
        for cfg in [
            SwitchConfig::mp5(4),
            SwitchConfig::ideal(4),
            SwitchConfig::no_d4(4),
            SwitchConfig::static_shard(4, 7),
            SwitchConfig::naive(4),
            SwitchConfig::mp5(4).with_hardware_fifos(),
            SwitchConfig {
                starvation_threshold: Some(4),
                ecn_threshold: Some(2),
                ..SwitchConfig::mp5(4)
            },
        ] {
            let prog = compile(SHARDED, &Target::default()).unwrap();
            let nf = prog.num_fields();
            let trace = TraceBuilder::new(800, 44).build(nf, |r, _, f| {
                use rand::Rng;
                f[0] = r.gen_range(0..1_000);
            });
            let seq = Mp5Switch::new(prog.clone(), cfg.clone()).run(trace.clone());
            let par_cfg = SwitchConfig {
                engine: EngineMode::Parallel(4),
                ..cfg.clone()
            };
            let par = Mp5Switch::new(prog, par_cfg).run(trace);
            assert_eq!(seq, par, "engines diverged under {cfg:?}");
        }
    }

    #[test]
    fn try_new_rejects_invalid_configs() {
        use crate::config::{ConfigError, EngineMode};
        let prog = compile(COUNTER, &Target::default()).unwrap();
        // physical_pipelines below the logical count is a hard error
        // now (it used to be silently clamped upward).
        let shrunk = SwitchConfig {
            physical_pipelines: Some(2),
            ..SwitchConfig::mp5(4)
        };
        assert_eq!(
            Mp5Switch::try_new(prog.clone(), shrunk).err(),
            Some(ConfigError::PhysicalPipelinesBelowLogical {
                physical: 2,
                logical: 4
            })
        );
        let zero_workers = SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(0));
        assert_eq!(
            Mp5Switch::try_new(prog.clone(), zero_workers).err(),
            Some(ConfigError::ZeroWorkers)
        );
        // A *larger* physical chip remains valid (logical partitions).
        let ok = SwitchConfig {
            physical_pipelines: Some(8),
            ..SwitchConfig::mp5(4)
        };
        assert!(Mp5Switch::try_new(prog, ok).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid SwitchConfig")]
    fn new_panics_on_invalid_config() {
        let prog = compile(COUNTER, &Target::default()).unwrap();
        let bad = SwitchConfig {
            physical_pipelines: Some(1),
            ..SwitchConfig::mp5(4)
        };
        let _ = Mp5Switch::new(prog, bad);
    }

    #[test]
    fn timed_run_matches_untimed_and_counts_cycles() {
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(400, 55).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let plain = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let (timed, _, timings) = Mp5Switch::new(prog, SwitchConfig::mp5(4))
            .try_run_timed(trace)
            .unwrap();
        assert_eq!(plain, timed);
        assert_eq!(timings.nanos.len() as u64, timed.cycles);
        assert!(timings.percentile(99.0) >= timings.percentile(50.0));
    }

    /// Runs a trace through the Banzai reference and a faulted MP5
    /// switch, returning both results.
    fn run_faulted(
        src: &str,
        cfg: SwitchConfig,
        n: usize,
        seed: u64,
        plan: &mp5_faults::FaultPlan,
    ) -> (mp5_banzai::RunResult, RunReport) {
        let prog = compile(src, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(n, seed).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::with_faults(prog, cfg, NopSink, plan.injector()).run(trace);
        (reference, report)
    }

    #[test]
    fn pipeline_kill_degrades_gracefully() {
        let plan = mp5_faults::FaultPlan::new(1).pipeline_fail(40, 2);
        let (reference, report) = run_faulted(SHARDED, SwitchConfig::mp5(4), 3000, 11, &plan);
        // Every packet still completes, and functional equivalence to
        // the single-pipeline reference is preserved: losing a pipeline
        // degrades throughput, never correctness.
        assert_eq!(report.completed, report.offered);
        assert!(report.result.equivalent_to(&reference));
        assert!(report.fault.accounted(), "accounting: {:?}", report.fault);
        assert_eq!(report.fault.injected, 1);
        assert_eq!(report.fault.degraded, 1);
        assert_eq!(report.fault.dead_pipelines, vec![2]);
        assert!(report.fault.degraded_cycles > 0);
        assert!(
            report.fault.evacuated_indexes > 0,
            "active indexes must evacuate off the dead pipeline"
        );
    }

    #[test]
    fn dead_pipeline_owns_no_indexes_after_run() {
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(2000, 13).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let plan = mp5_faults::FaultPlan::new(2).pipeline_fail(30, 1);
        let mut sw =
            Mp5Switch::with_faults(prog.clone(), SwitchConfig::mp5(4), NopSink, plan.injector());
        sw.report.offered = trace.len() as u64;
        sw.arrivals = trace.into();
        while !sw.drained() {
            sw.step();
        }
        // The same sweep `finish` runs: with the switch drained, every
        // in-flight guard is released and the map must come out clean.
        sw.evacuate_dead(true);
        for (ri, meta) in prog.regs.iter().enumerate() {
            if meta.shardable {
                assert!(
                    sw.index_map[ri].iter().all(|&p| p != 1),
                    "index map still references dead pipeline 1: {:?}",
                    sw.index_map[ri]
                );
            }
        }
        let (report, _) = sw.finish();
        assert_eq!(report.fault.dead_pipelines, vec![1]);
        assert!(report.fault.evacuated_indexes > 0);
    }

    #[test]
    fn lost_phantoms_are_recovered_and_equivalent() {
        let plan = mp5_faults::FaultPlan::new(3).phantom_drop(10, 400, 120);
        let (reference, report) = run_faulted(SHARDED, SwitchConfig::mp5(4), 2500, 17, &plan);
        assert_eq!(report.completed, report.offered);
        assert!(
            report.result.equivalent_to(&reference),
            "recovered packets must keep C1: access order == entry order"
        );
        assert!(report.fault.phantoms_dropped > 0, "window must fire");
        assert!(report.fault.phantoms_recovered > 0);
        assert!(report.fault.phantoms_recovered <= report.fault.phantoms_dropped);
        assert!(report.fault.accounted());
    }

    #[test]
    fn stalls_grant_delays_and_remap_aborts_recover() {
        let plan = mp5_faults::FaultPlan::new(4)
            .stage_stall(20, 0, 2, 40)
            .grant_delay(10, 3, 200)
            .fifo_overflow(60, 1, 2, 30)
            .remap_abort(5, 2);
        let cfg = SwitchConfig::mp5(4);
        let (reference, report) = run_faulted(SHARDED, cfg, 2500, 19, &plan);
        assert_eq!(report.completed, report.offered);
        assert!(report.result.equivalent_to(&reference));
        assert!(report.fault.accounted(), "accounting: {:?}", report.fault);
        assert_eq!(report.fault.injected, 4);
        assert_eq!(report.fault.recovered, 4);
        assert!(report.fault.delayed_grants > 0, "steering must be delayed");
        assert!(report.fault.aborted_remaps > 0, "remap rounds must abort");
    }

    #[test]
    fn bounded_fifos_attribute_drops_to_stages() {
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(3000, 23).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..8); // 8 hot indexes: deep queues
        });
        let cfg = SwitchConfig {
            fifo_capacity: Some(2),
            ..SwitchConfig::mp5(4)
        };
        let report = Mp5Switch::new(prog, cfg).run(trace);
        let d = report.drops;
        assert!(
            d.phantom_fifo_full + d.data_no_phantom + d.data_fifo_full > 0,
            "capacity 2 under 8 hot indexes must drop: {d:?}"
        );
        // Every FIFO-located drop is attributed to its (pipeline, stage).
        assert_eq!(
            report.stage_drop_total(),
            d.phantom_fifo_full + d.data_no_phantom + d.data_fifo_full + d.starvation,
            "stage attribution must cover every FIFO drop: {:?}",
            report.stage_drops
        );
        assert!(report.completed < report.offered);
        assert_eq!(
            report.completed + d.total_data(),
            report.offered,
            "every offered packet either completes or is counted dropped"
        );
    }

    /// The engine's job payloads cross thread boundaries: every type
    /// moved into a worker must be `Send` (compile-time audit).
    #[test]
    fn engine_payloads_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Flight>();
        assert_send::<StageQueue>();
        assert_send::<Unit>();
        assert_send::<Job>();
        assert_send::<WorkFx>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<EngineShared>();
        assert_sync::<CompiledProgram>();
    }

    /// Sorted-by-entry-order trace for the streaming API.
    fn sharded_trace(n: usize, seed: u64) -> (CompiledProgram, Vec<Packet>) {
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let mut trace = TraceBuilder::new(n, seed).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        trace.sort_by_key(|p| p.entry_order_key());
        (prog, trace)
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let (prog, trace) = sharded_trace(3000, 11);
        // (checkpoint cfg, restore cfg): the restore side may pick a
        // different engine/exec path — all are bit-identical machines.
        let cases = [
            (
                SwitchConfig::mp5(4).with_exec(ExecPath::Scalar),
                SwitchConfig::mp5(4).with_exec(ExecPath::Scalar),
            ),
            (SwitchConfig::mp5(4), SwitchConfig::mp5(4)),
            (
                SwitchConfig::mp5(4).with_exec(ExecPath::Scalar),
                SwitchConfig::mp5(4).with_exec(ExecPath::Batch),
            ),
            (
                SwitchConfig::mp5(4),
                SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(2)),
            ),
            (
                SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(2)),
                SwitchConfig::mp5(4),
            ),
        ];
        for (cfg_a, cfg_b) in cases {
            let oracle = Mp5Switch::new(prog.clone(), cfg_b.clone()).run(trace.clone());
            let mut sw = Mp5Switch::new(prog.clone(), cfg_a.clone());
            for p in trace.clone() {
                sw.offer(p);
            }
            for _ in 0..40 {
                sw.tick();
                sw.drain_egress();
            }
            let state = sw.extract_state(1);
            drop(sw);
            // Round-trip a real mid-run state through JSON: proves every
            // live structure serializes (the mp5serve codec depends on
            // this).
            let json = serde_json::to_string(&state).expect("state serializes");
            let state: crate::SwitchState = serde_json::from_str(&json).expect("state parses");
            let mut sw =
                Mp5Switch::try_restore_with(prog.clone(), cfg_b.clone(), state, NopSink, NoFaults)
                    .expect("restore");
            while !sw.is_idle() {
                sw.tick();
                sw.drain_egress();
            }
            let (report, _) = sw.finish_stream();
            assert_eq!(
                report, oracle,
                "restored run diverged ({cfg_a:?} -> {cfg_b:?})"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let (prog, trace) = sharded_trace(500, 3);
        let mut sw = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4));
        for p in trace {
            sw.offer(p);
        }
        for _ in 0..10 {
            sw.tick();
            sw.drain_egress();
        }
        let state = sw.extract_state(1);
        let err = Mp5Switch::try_restore_with(prog, SwitchConfig::mp5(8), state, NopSink, NoFaults)
            .expect_err("4-pipeline snapshot must not restore into an 8-pipeline switch");
        assert!(matches!(err, crate::RestoreError::Incompatible(_)));
    }

    #[test]
    fn hot_swap_identical_program_completes_with_closed_ledger() {
        let (prog, trace) = sharded_trace(3000, 13);
        for cfg in [
            SwitchConfig::mp5(4),
            SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(2)),
        ] {
            let oracle = Mp5Switch::new(prog.clone(), cfg.clone()).run(trace.clone());
            let mut sw = Mp5Switch::new(prog.clone(), cfg.clone());
            for p in trace.clone() {
                sw.offer(p);
            }
            for _ in 0..30 {
                sw.tick();
                sw.drain_egress();
            }
            // Swap in a freshly compiled copy of the same source, mid-
            // traffic, without draining.
            let recompiled = compile(SHARDED, &Target::default()).unwrap();
            let swap = sw.hot_swap(recompiled).expect("identical layout must swap");
            assert!(swap.closed(), "swap ledger must close: {swap:?}");
            assert_eq!(swap.migrated, 64, "SHARDED owns one 64-entry table");
            assert_eq!(swap.lost_phantoms, 0);
            while !sw.is_idle() {
                sw.tick();
                sw.drain_egress();
            }
            let (report, _) = sw.finish_stream();
            assert_eq!(
                report, oracle,
                "swap to an identical program must be invisible"
            );
        }
    }

    #[test]
    fn hot_swap_rejects_incompatible_layouts() {
        let (prog, trace) = sharded_trace(500, 5);
        let mut sw = Mp5Switch::new(prog, SwitchConfig::mp5(4));
        for p in trace {
            sw.offer(p);
        }
        for _ in 0..10 {
            sw.tick();
            sw.drain_egress();
        }
        // Different packet field layout.
        let other = compile(COUNTER, &Target::default()).unwrap();
        assert!(matches!(
            sw.hot_swap(other),
            Err(crate::SwapError::FieldLayout { .. })
        ));
        // Same fields, different register size.
        let wide = "struct Packet { int h; int out; };
            int tbl[128] = {0};
            void func(struct Packet p) {
                tbl[p.h % 128] = tbl[p.h % 128] + 1;
                p.out = tbl[p.h % 128];
            }";
        let wide = compile(wide, &Target::default()).unwrap();
        match sw.hot_swap(wide) {
            Err(crate::SwapError::RegisterLayout { .. })
            | Err(crate::SwapError::StageCount { .. }) => {}
            other => panic!("expected a layout rejection, got {other:?}"),
        }
        // The rejected swaps left the switch fully operational.
        while !sw.is_idle() {
            sw.tick();
            sw.drain_egress();
        }
        let (report, _) = sw.finish_stream();
        assert_eq!(report.completed, 500);
    }
}
