//! The MP5 switch simulator (architecture §3.2 + runtime §3.4).

use std::collections::{HashSet, VecDeque};

use mp5_compiler::program::{INDEX_ARRAY_LEVEL, REG_STAGE_SENTINEL};
use mp5_compiler::CompiledProgram;
use mp5_fabric::{Crossbar, LogicalFifo, OrderKey, PhantomChannel, PhantomKey, PopOutcome};
use mp5_trace::{DropCause, EventKind, NopSink, TraceCtx, TraceSink, NO_LOC};
use mp5_types::time::cycle_len;
use mp5_types::{AccessTag, Packet, PipelineId, RegId, StageId, Value};

use crate::config::{ShardingMode, SprayMode, SwitchConfig};
use crate::report::RunReport;
use crate::shard;

/// Converts a fabric phantom key into the trace schema's access key.
fn tkey(key: PhantomKey) -> mp5_trace::Key {
    mp5_trace::Key {
        pkt: key.pkt,
        reg: key.reg,
        index: key.index,
    }
}

/// The simulator's liveness invariant broke: a run failed to drain all
/// in-flight work within its cycle cap. Carries a snapshot of where the
/// stuck work sits, for debugging deadlocked configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The cycle cap that was exceeded.
    pub cap: u64,
    /// Packets still waiting at ingress.
    pub ingress: usize,
    /// Packets occupying pipeline lanes.
    pub in_lanes: usize,
    /// Packets sitting in stage FIFOs.
    pub queued: usize,
    /// Phantoms still in flight on the dedicated channel.
    pub channel: usize,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles: ingress={}, in-lanes={}, queued={}, channel={}",
            self.cap, self.ingress, self.in_lanes, self.queued, self.channel
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// A packet in flight through the switch, with its entry-order key and
/// ingress pipeline (the lane its phantoms use).
#[derive(Debug, Clone)]
struct Flight {
    pkt: Packet,
    order: OrderKey,
    ingress: PipelineId,
}

impl Flight {
    /// The phantom key for one of this packet's access tags.
    fn key(&self, tag: &AccessTag) -> PhantomKey {
        PhantomKey {
            pkt: self.pkt.id,
            reg: tag.reg,
            index: tag.index,
        }
    }
}

/// A phantom packet payload on the dedicated channel: 48 bits in
/// hardware — `(packet id, state, index, pipeline, stage)` (Figure 5).
#[derive(Debug, Clone)]
struct PhantomMsg {
    key: PhantomKey,
    ts: OrderKey,
    dest: PipelineId,
    lane: PipelineId,
}

/// Per-(pipeline, stage) input queue: the bank of `k` FIFOs, or one
/// FIFO per register index in the ideal configuration.
#[derive(Debug)]
enum StageQueue {
    Logical(LogicalFifo<Flight>),
    PerIndex {
        subs: std::collections::BTreeMap<u32, LogicalFifo<Flight>>,
        max_total: usize,
    },
}

/// What a stage's scheduler did with its FIFO this cycle.
enum Serve {
    Idle,
    Served(Flight),
    Wasted,
}

impl StageQueue {
    fn new(cfg: &SwitchConfig) -> Self {
        if cfg.per_index_fifos {
            StageQueue::PerIndex {
                subs: Default::default(),
                max_total: 0,
            }
        } else {
            StageQueue::Logical(LogicalFifo::new(cfg.pipelines, cfg.fifo_capacity))
        }
    }

    fn sub(
        subs: &mut std::collections::BTreeMap<u32, LogicalFifo<Flight>>,
        index: u32,
    ) -> &mut LogicalFifo<Flight> {
        subs.entry(index)
            .or_insert_with(|| LogicalFifo::new(1, None))
    }

    fn push_phantom<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        ts: OrderKey,
        lane: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> bool {
        match self {
            StageQueue::Logical(f) => f.push_phantom_traced(key, ts, lane, sink, ctx).is_ok(),
            StageQueue::PerIndex { subs, max_total } => {
                let ok = Self::sub(subs, key.index)
                    .push_phantom_traced(key, ts, PipelineId(0), sink, ctx)
                    .is_ok();
                *max_total = (*max_total).max(subs.values().map(|f| f.len()).sum::<usize>());
                ok
            }
        }
    }

    fn push_data<S: TraceSink>(
        &mut self,
        fl: Flight,
        ts: OrderKey,
        lane: PipelineId,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<(), Flight> {
        let pkt = fl.pkt.id;
        match self {
            StageQueue::Logical(f) => f.push_data_traced(pkt, fl, ts, lane, sink, ctx).map(|_| ()),
            StageQueue::PerIndex { subs, max_total } => {
                let r = Self::sub(subs, INDEX_ARRAY_LEVEL)
                    .push_data_traced(pkt, fl, ts, PipelineId(0), sink, ctx)
                    .map(|_| ());
                *max_total = (*max_total).max(subs.values().map(|f| f.len()).sum::<usize>());
                r
            }
        }
    }

    fn insert_data<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        fl: Flight,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> Result<(), Flight> {
        match self {
            StageQueue::Logical(f) => f.insert_data_traced(key, fl, sink, ctx).map(|_| ()),
            StageQueue::PerIndex { subs, .. } => Self::sub(subs, key.index)
                .insert_data_traced(key, fl, sink, ctx)
                .map(|_| ()),
        }
    }

    fn cancel<S: TraceSink>(
        &mut self,
        key: PhantomKey,
        free: bool,
        sink: &mut S,
        ctx: TraceCtx,
    ) -> bool {
        match self {
            StageQueue::Logical(f) => f.cancel_traced(key, free, sink, ctx),
            StageQueue::PerIndex { subs, .. } => {
                Self::sub(subs, key.index).cancel_traced(key, free, sink, ctx)
            }
        }
    }

    fn serve<S: TraceSink>(&mut self, st: usize, sink: &mut S, ctx: TraceCtx) -> Serve {
        match self {
            StageQueue::Logical(f) => match f.pop_traced(sink, ctx, |fl| fl.pkt.id) {
                PopOutcome::Data(fl) => Serve::Served(fl),
                PopOutcome::ConsumedStale => Serve::Wasted,
                PopOutcome::Empty | PopOutcome::BlockedOnPhantom(_) => Serve::Idle,
            },
            StageQueue::PerIndex { subs, .. } => {
                // No head-of-line blocking: serve the oldest *servable*
                // head across all per-index queues. A data head with
                // sibling placeholders in other sub-queues is eligible
                // only when every sibling is also at its queue's head —
                // otherwise an earlier-arrived packet for that sibling
                // index would be overtaken when this packet executes all
                // of its accesses at once.
                #[derive(Debug)]
                enum Head {
                    Phantom(PhantomKey),
                    Data(Vec<PhantomKey>),
                    Stale,
                }
                let mut heads: std::collections::BTreeMap<u32, (OrderKey, Head)> =
                    Default::default();
                for (&idx, f) in subs.iter_mut() {
                    let Some(entry) = f.peek_oldest() else {
                        continue;
                    };
                    let ts = entry.ts();
                    let head = match entry {
                        mp5_fabric::Entry::Phantom { key, .. } => Head::Phantom(*key),
                        mp5_fabric::Entry::Stale { free, .. } => {
                            debug_assert!(!free, "free stales are drained by peek");
                            Head::Stale
                        }
                        mp5_fabric::Entry::Data { item, .. } => Head::Data(
                            item.pkt
                                .tags
                                .iter()
                                .filter(|t| t.stage.index() == st)
                                .map(|t| item.key(t))
                                .collect(),
                        ),
                    };
                    heads.insert(idx, (ts, head));
                }
                let mut cands: Vec<(OrderKey, u32)> = heads
                    .iter()
                    .filter(|(_, (_, h))| !matches!(h, Head::Phantom(_)))
                    .map(|(&idx, (ts, _))| (*ts, idx))
                    .collect();
                cands.sort_unstable();
                for (_, idx) in cands {
                    if let (_, Head::Data(keys)) = &heads[&idx] {
                        // A sibling key gates service only while its
                        // phantom is still queued (in no-phantom modes,
                        // or after drops, there is nothing to wait for).
                        let eligible = keys.iter().all(|k| {
                            k.index == idx
                                || subs.get(&k.index).is_none_or(|sub| !sub.has_phantom(*k))
                                || matches!(
                                    heads.get(&k.index),
                                    Some((_, Head::Phantom(hk))) if hk == k
                                )
                        });
                        if !eligible {
                            continue;
                        }
                    }
                    let sub = subs.get_mut(&idx).expect("exists");
                    let out = match sub.pop_traced(sink, ctx, |fl| fl.pkt.id) {
                        PopOutcome::Data(fl) => Serve::Served(fl),
                        PopOutcome::ConsumedStale => Serve::Wasted,
                        _ => unreachable!("candidate head is servable"),
                    };
                    // Drop drained sub-queues so the scheduler scan
                    // stays proportional to *occupied* indexes.
                    if sub.is_empty() {
                        subs.remove(&idx);
                    }
                    return out;
                }
                Serve::Idle
            }
        }
    }

    fn oldest_ts(&mut self) -> Option<OrderKey> {
        match self {
            StageQueue::Logical(f) => f.oldest_ts(),
            StageQueue::PerIndex { subs, .. } => {
                subs.values_mut().filter_map(|f| f.oldest_ts()).min()
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            StageQueue::Logical(f) => f.len(),
            StageQueue::PerIndex { subs, .. } => subs.values().map(|f| f.len()).sum(),
        }
    }

    fn max_occupancy(&self) -> usize {
        match self {
            StageQueue::Logical(f) => f.max_occupancy(),
            StageQueue::PerIndex { max_total, .. } => *max_total,
        }
    }
}

/// The MP5 multi-pipeline switch.
///
/// Generic over a [`TraceSink`] `S` (default [`NopSink`]): with the
/// default, every emission guard is `if false` after monomorphization
/// and the instrumentation compiles away entirely (the `hotpath` bench
/// pins this down). Use [`Mp5Switch::with_sink`] to record a run.
#[derive(Debug)]
pub struct Mp5Switch<S: TraceSink = NopSink> {
    cfg: SwitchConfig,
    prog: CompiledProgram,
    k: usize,
    /// Pipelines of the physical chip (clock period = 64·timing_k).
    timing_k: usize,
    stages: usize,
    prologue: usize,
    /// Register state replicated per pipeline; only the index-map-active
    /// copy of each index is meaningful (D2, Figure 3).
    regs: Vec<Vec<Vec<Value>>>,
    /// index-to-pipeline map, replicated in hardware, one logical copy
    /// here.
    index_map: Vec<Vec<u16>>,
    /// Packet access counters per register index (dynamic sharding).
    access_ctr: Vec<Vec<u64>>,
    /// In-flight packet counters per register index (remap guard).
    inflight: Vec<Vec<u32>>,
    /// Input queues per (pipeline, stage).
    queues: Vec<Vec<StageQueue>>,
    /// Stage occupancy per (pipeline, stage).
    lanes: Vec<Vec<Option<Flight>>>,
    channel: PhantomChannel<PhantomMsg>,
    crossbars: Vec<Crossbar>,
    /// Phantoms cancelled while still on the channel.
    cancelled: HashSet<PhantomKey>,
    /// Arrived packets waiting for an ingress slot.
    ingress_q: VecDeque<Flight>,
    /// Future arrivals, ascending entry order.
    arrivals: VecDeque<Packet>,
    rr: usize,
    cycle: u64,
    report: RunReport,
    sink: S,
}

impl Mp5Switch<NopSink> {
    /// Builds an untraced switch running `prog` under `cfg`. Every
    /// pipeline is programmed identically (D1); each register array is
    /// allocated in full in every pipeline, with the index-to-pipeline
    /// map deciding the active copy (D2).
    pub fn new(prog: CompiledProgram, cfg: SwitchConfig) -> Self {
        Self::with_sink(prog, cfg, NopSink)
    }
}

impl<S: TraceSink> Mp5Switch<S> {
    /// Builds a switch that records every observable action into
    /// `sink`. Semantically identical to [`Mp5Switch::new`]; the sink
    /// only observes.
    pub fn with_sink(prog: CompiledProgram, cfg: SwitchConfig, sink: S) -> Self {
        assert!(cfg.pipelines >= 1, "need at least one pipeline");
        let k = cfg.pipelines;
        let timing_k = cfg.physical_pipelines.unwrap_or(k).max(k);
        let stages = prog.num_stages();
        let prologue = prog.resolution.stages;
        let regs: Vec<Vec<Vec<Value>>> = (0..k).map(|_| prog.initial_regs()).collect();
        let index_map: Vec<Vec<u16>> = prog
            .regs
            .iter()
            .enumerate()
            .map(|(ri, r)| init_map(ri, r, &cfg, k))
            .collect();
        let access_ctr = prog
            .regs
            .iter()
            .map(|r| vec![0u64; r.size as usize])
            .collect();
        let inflight = prog
            .regs
            .iter()
            .map(|r| vec![0u32; r.size as usize])
            .collect();
        let queues = (0..k)
            .map(|_| (0..stages).map(|_| StageQueue::new(&cfg)).collect())
            .collect();
        let lanes = (0..k).map(|_| vec![None; stages]).collect();
        let mut report = RunReport::new();
        report.set_cycle_len(cycle_len(timing_k));
        Mp5Switch {
            channel: PhantomChannel::new(stages),
            crossbars: (0..stages).map(|_| Crossbar::new(k)).collect(),
            cfg,
            prog,
            k,
            timing_k,
            stages,
            prologue,
            regs,
            index_map,
            access_ctr,
            inflight,
            queues,
            lanes,
            cancelled: HashSet::new(),
            ingress_q: VecDeque::new(),
            arrivals: VecDeque::new(),
            rr: 0,
            cycle: 0,
            report,
            sink,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Current index-to-pipeline map of a register.
    pub fn index_map(&self, reg: RegId) -> &[u16] {
        &self.index_map[reg.index()]
    }

    /// Runs a full trace to completion and returns the report.
    ///
    /// Panics if the simulation fails to drain within its cycle cap; use
    /// [`Mp5Switch::try_run`] to handle that as a structured
    /// [`InvariantViolation`] instead.
    pub fn run(self, packets: Vec<Packet>) -> RunReport {
        match self.try_run(packets) {
            Ok(report) => report,
            Err(v) => panic!("{v}"),
        }
    }

    /// Like [`Mp5Switch::run`], but also returns the trace sink with
    /// its recorded event stream.
    pub fn run_traced(self, packets: Vec<Packet>) -> (RunReport, S) {
        match self.try_run_traced(packets) {
            Ok(out) => out,
            Err(v) => panic!("{v}"),
        }
    }

    /// Runs a full trace to completion, reporting a structured
    /// [`InvariantViolation`] (instead of panicking) if the switch fails
    /// to drain within its cycle cap — the liveness invariant every
    /// well-formed configuration must uphold.
    pub fn try_run(self, packets: Vec<Packet>) -> Result<RunReport, InvariantViolation> {
        self.try_run_traced(packets).map(|(report, _)| report)
    }

    /// [`Mp5Switch::try_run`] returning the sink alongside the report,
    /// so callers can audit or export the recorded stream.
    pub fn try_run_traced(
        mut self,
        mut packets: Vec<Packet>,
    ) -> Result<(RunReport, S), InvariantViolation> {
        packets.sort_by_key(|p| p.entry_order_key());
        self.report.offered = packets.len() as u64;
        self.report.input_duration = packets
            .last()
            .map(|p| p.arrival + mp5_types::BYTES_PER_SLOT)
            .unwrap_or(0);
        self.arrivals = packets.into();
        let clen = cycle_len(self.timing_k);
        let input_cycles = self.report.input_duration / clen + 1;
        let cap = self.cfg.max_cycles.unwrap_or_else(|| {
            input_cycles * (self.k as u64 + 2) * 4 + (self.stages as u64) * 16 + 100_000
        });
        while !self.drained() {
            if self.cycle >= cap {
                return Err(InvariantViolation {
                    cap,
                    ingress: self.ingress_q.len(),
                    in_lanes: self.lanes.iter().flatten().filter(|l| l.is_some()).count(),
                    queued: self.queues.iter().flatten().map(|q| q.len()).sum(),
                    channel: self.channel.in_flight(),
                });
            }
            self.step();
        }
        Ok(self.finish())
    }

    fn drained(&self) -> bool {
        self.arrivals.is_empty()
            && self.ingress_q.is_empty()
            && self.channel.in_flight() == 0
            && self.lanes.iter().flatten().all(|l| l.is_none())
            && self.queues.iter().flatten().all(|q| q.len() == 0)
    }

    /// Simulates one pipeline cycle.
    fn step(&mut self) {
        // 1. Background dynamic sharding.
        if self.cycle > 0 && self.cycle.is_multiple_of(self.cfg.remap_period) {
            self.remap();
        }

        // 2. Phantom channel advances one hop; deliveries enter FIFOs.
        for (msg, stage) in self.channel.advance() {
            let ctx = TraceCtx::new(self.cycle, msg.dest.0, stage.0);
            if self.cancelled.remove(&msg.key) {
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::PhantomChannelCancel { key: tkey(msg.key) },
                    );
                }
                continue;
            }
            let ok = self.queues[msg.dest.index()][stage.index()].push_phantom(
                msg.key,
                msg.ts,
                msg.lane,
                &mut self.sink,
                ctx,
            );
            if !ok {
                self.report.drops.phantom_fifo_full += 1;
            }
        }

        // 3. Move phase: all stage occupants advance simultaneously.
        let mut incoming: Vec<Vec<Option<Flight>>> =
            (0..self.k).map(|_| vec![None; self.stages]).collect();
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            for st in (0..self.stages).rev() {
                let Some(fl) = self.lanes[pl][st].take() else {
                    continue;
                };
                if st + 1 == self.stages {
                    self.complete(pl, fl);
                    continue;
                }
                let next = st + 1;
                let has_tag_here = fl.pkt.tags.first().is_some_and(|t| t.stage.index() == next);
                if has_tag_here {
                    let dest = fl.pkt.tags[0].pipeline;
                    self.crossbars[next].route_traced(
                        PipelineId(pl as u16),
                        dest,
                        &mut self.sink,
                        TraceCtx::new(self.cycle, pl as u16, next as u16),
                    );
                    if dest.index() != pl {
                        self.report.steered += 1;
                    }
                    self.enqueue_stateful(dest, next, fl);
                } else {
                    inc_row[next] = Some(fl);
                }
            }
            self.crossbars.iter_mut().for_each(|x| x.end_cycle());
        }

        // 3b. Ingress: spray eligible arrivals over pipelines.
        let now_end = (self.cycle + 1) * cycle_len(self.timing_k);
        while self.arrivals.front().is_some_and(|p| p.arrival < now_end) {
            let pkt = self.arrivals.pop_front().expect("front checked");
            let order = OrderKey(pkt.arrival, pkt.port.0 as u64);
            self.ingress_q.push_back(Flight {
                pkt,
                order,
                ingress: PipelineId(0), // assigned at admission
            });
        }
        let admit_limit = match self.cfg.spray {
            SprayMode::RoundRobin => self.k,
            SprayMode::SinglePipeline(_) => 1,
        };
        for _ in 0..admit_limit {
            if self.ingress_q.is_empty() {
                break;
            }
            let pl = match self.cfg.spray {
                SprayMode::RoundRobin => {
                    let pl = self.rr;
                    self.rr = (self.rr + 1) % self.k;
                    pl
                }
                SprayMode::SinglePipeline(p) => p,
            };
            if incoming[pl][0].is_some() {
                continue;
            }
            let mut fl = self.ingress_q.pop_front().expect("non-empty");
            fl.ingress = PipelineId(pl as u16);
            if S::ENABLED {
                TraceCtx::new(self.cycle, pl as u16, 0).emit(
                    &mut self.sink,
                    EventKind::Ingress {
                        pkt: fl.pkt.id,
                        order: (fl.order.0, fl.order.1),
                    },
                );
            }
            incoming[pl][0] = Some(fl);
        }

        // 4. Admit/work phase: each (pipeline, stage) processes at most
        // one packet; incoming pass-through has priority (Invariant 2).
        for (pl, inc_row) in incoming.iter_mut().enumerate() {
            for (st, slot) in inc_row.iter_mut().enumerate() {
                if let Some(fl) = slot.take() {
                    // Starvation handling (§3.4): drop an incoming
                    // packet that is stateless-from-here-on in favor of
                    // a long-starved queued stateful packet.
                    if let Some(thr) = self.cfg.starvation_threshold {
                        let starved = fl.pkt.tags.is_empty()
                            && self.queues[pl][st].oldest_ts().is_some_and(|ts| {
                                let now = self.cycle * cycle_len(self.timing_k);
                                now.saturating_sub(ts.0) > thr * cycle_len(self.timing_k)
                            });
                        if starved {
                            self.report.drops.starvation += 1;
                            if S::ENABLED {
                                TraceCtx::new(self.cycle, pl as u16, st as u16).emit(
                                    &mut self.sink,
                                    EventKind::Drop {
                                        pkt: fl.pkt.id,
                                        cause: DropCause::Starvation,
                                    },
                                );
                            }
                            self.serve_queue(pl, st);
                            continue;
                        }
                    }
                    if S::ENABLED {
                        // Invariant 2 in action: the incoming packet
                        // takes the slot; `bypassed` flags the case
                        // where queued stateful work was waiting.
                        let bypassed = self.queues[pl][st].len() > 0;
                        TraceCtx::new(self.cycle, pl as u16, st as u16).emit(
                            &mut self.sink,
                            EventKind::Execute {
                                pkt: fl.pkt.id,
                                queued: false,
                                bypassed,
                            },
                        );
                    }
                    let fl = self.process(pl, st, fl);
                    self.lanes[pl][st] = Some(fl);
                } else {
                    self.serve_queue(pl, st);
                }
            }
        }

        self.cycle += 1;
    }

    /// Serves one packet from the stage's FIFO, if the scheduler finds a
    /// servable head.
    fn serve_queue(&mut self, pl: usize, st: usize) {
        let ctx = TraceCtx::new(self.cycle, pl as u16, st as u16);
        match self.queues[pl][st].serve(st, &mut self.sink, ctx) {
            Serve::Served(fl) => {
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::Execute {
                            pkt: fl.pkt.id,
                            queued: true,
                            bypassed: false,
                        },
                    );
                }
                let fl = self.process(pl, st, fl);
                self.lanes[pl][st] = Some(fl);
            }
            Serve::Wasted => {
                self.report.wasted_cycles += 1;
            }
            Serve::Idle => {}
        }
    }

    /// A data packet arrives at the stateful stage it is tagged for:
    /// replace its phantom (or queue directly when phantoms are off).
    fn enqueue_stateful(&mut self, dest: PipelineId, st: usize, mut fl: Flight) {
        // ECN-inspired backpressure (§3.4): mark the packet if the queue
        // it joins has built past the threshold.
        if let Some(thr) = self.cfg.ecn_threshold {
            if self.queues[dest.index()][st].len() > thr {
                fl.pkt.ecn = true;
            }
        }
        // All tags for this stage (possibly several: speculative
        // branches or overlapping exact plans).
        let keys: Vec<PhantomKey> = fl
            .pkt
            .tags
            .iter()
            .take_while(|t| t.stage.index() == st)
            .map(|t| fl.key(t))
            .collect();
        debug_assert!(!keys.is_empty());
        let ctx = TraceCtx::new(self.cycle, dest.0, st as u16);
        if !self.cfg.phantoms {
            // no-D4 ablation: queue in arrival-at-stage order.
            let ts = OrderKey(self.cycle, fl.ingress.0 as u64);
            let lane = fl.ingress;
            if let Err(fl) =
                self.queues[dest.index()][st].push_data(fl, ts, lane, &mut self.sink, ctx)
            {
                self.report.drops.data_fifo_full += 1;
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::Drop {
                            pkt: fl.pkt.id,
                            cause: DropCause::FifoFull,
                        },
                    );
                }
                self.drop_remaining(fl, st);
            }
            return;
        }
        match self.queues[dest.index()][st].insert_data(keys[0], fl, &mut self.sink, ctx) {
            Ok(()) => {
                // Sibling phantoms (speculative branches / overlapping
                // plans) stay in place: they keep blocking their index
                // until this packet is actually served and performs the
                // accesses, and are reclaimed then (see `process`).
                // Cancelling them here would let a later packet overtake
                // the not-yet-executed access in per-index scheduling.
            }
            Err(fl) => {
                // Phantom was dropped upstream: the drop cascades.
                self.report.drops.data_no_phantom += 1;
                if S::ENABLED {
                    ctx.emit(
                        &mut self.sink,
                        EventKind::Drop {
                            pkt: fl.pkt.id,
                            cause: DropCause::NoPhantom,
                        },
                    );
                }
                for &k in &keys[1..] {
                    self.queues[dest.index()][st].cancel(k, true, &mut self.sink, ctx);
                }
                self.drop_remaining(fl, st);
            }
        }
    }

    /// Cleans up after dropping a data packet at stage `st`: cancel all
    /// of its not-yet-consumed phantoms (in FIFOs or still on the
    /// channel) and release its in-flight counters.
    fn drop_remaining(&mut self, fl: Flight, st: usize) {
        for tag in &fl.pkt.tags {
            self.dec_inflight(tag);
            if tag.stage.index() <= st {
                continue; // this stage's keys were handled by the caller
            }
            let key = fl.key(tag);
            let ctx = TraceCtx::new(self.cycle, tag.pipeline.0, tag.stage.0);
            if !self.queues[tag.pipeline.index()][tag.stage.index()].cancel(
                key,
                true,
                &mut self.sink,
                ctx,
            ) {
                // Still on the channel: discard at delivery.
                self.cancelled.insert(key);
            }
        }
    }

    /// Executes the stage's work on a packet: address resolution at the
    /// pipeline head, phantom generation at the end of the prologue,
    /// and the body stage program elsewhere.
    fn process(&mut self, pl: usize, st: usize, mut fl: Flight) -> Flight {
        if st == 0 && self.prologue > 0 {
            self.resolve(pl, &mut fl);
        }
        if self.prologue > 0 && st == self.prologue - 1 && self.cfg.phantoms {
            // Phantom generation stage: one phantom per resolved access,
            // in tag order, onto the dedicated channel.
            for tag in &fl.pkt.tags {
                if S::ENABLED {
                    TraceCtx::new(self.cycle, pl as u16, st as u16).emit(
                        &mut self.sink,
                        EventKind::PhantomEmit {
                            key: tkey(fl.key(tag)),
                            dest_pipeline: tag.pipeline.0,
                            dest_stage: tag.stage.0,
                        },
                    );
                }
                self.channel.inject(
                    PhantomMsg {
                        key: fl.key(tag),
                        ts: fl.order,
                        dest: tag.pipeline,
                        lane: fl.ingress,
                    },
                    StageId(st as u16),
                    tag.stage,
                );
                self.report.phantoms_generated += 1;
            }
        }
        if st >= self.prologue {
            let body = st - self.prologue;
            let accesses = self
                .prog
                .execute_stage(body, &mut fl.pkt.fields, &mut self.regs[pl]);
            for a in &accesses {
                if S::ENABLED {
                    TraceCtx::new(self.cycle, pl as u16, st as u16).emit(
                        &mut self.sink,
                        EventKind::Access {
                            pkt: fl.pkt.id,
                            reg: a.reg,
                            index: a.index,
                            order: (fl.order.0, fl.order.1),
                        },
                    );
                }
                self.report
                    .result
                    .access_log
                    .entry((a.reg, a.index))
                    .or_default()
                    .push(fl.pkt.id);
            }
            // Retire this stage's tags. A retired *speculative* tag
            // whose predicate turned out false produced no access: the
            // queue slot it consumed is §3.3's one wasted cycle.
            // Sibling placeholders beyond the first (the slot the data
            // packet occupied) are released now that the accesses have
            // executed; each still costs one pop cycle when reclaimed
            // (§3.3's speculative-false penalty).
            let mut retired_speculative = false;
            let mut first = true;
            while fl.pkt.tags.first().is_some_and(|t| t.stage.index() == st) {
                let tag = fl.pkt.tags.remove(0);
                retired_speculative |= tag.speculative;
                if !first && self.cfg.phantoms {
                    let key = fl.key(&tag);
                    let ctx = TraceCtx::new(self.cycle, pl as u16, st as u16);
                    self.queues[pl][st].cancel(key, false, &mut self.sink, ctx);
                }
                first = false;
                self.dec_inflight(&tag);
            }
            if retired_speculative && accesses.is_empty() {
                self.report.wasted_cycles += 1;
            }
        }
        fl
    }

    /// Runs preemptive address resolution (§3.3) on an arriving packet:
    /// computes every index it will access, consults the index-to-
    /// pipeline map, tags the packet, and bumps the runtime counters.
    fn resolve(&mut self, _pl: usize, fl: &mut Flight) {
        let resolved = self.prog.resolve(&mut fl.pkt.fields);
        let mut tags = Vec::with_capacity(resolved.len());
        for r in resolved {
            let dest = if r.reg == REG_STAGE_SENTINEL
                || r.index == INDEX_ARRAY_LEVEL
                || !self.prog.regs[r.reg.index()].shardable
            {
                // Pinned arrays and stage-level serialization live on
                // pipeline 0 (§3.3's conservative fallbacks).
                PipelineId(0)
            } else {
                PipelineId(self.index_map[r.reg.index()][r.index as usize])
            };
            if r.reg != REG_STAGE_SENTINEL && r.index != INDEX_ARRAY_LEVEL {
                self.access_ctr[r.reg.index()][r.index as usize] += 1;
                self.inflight[r.reg.index()][r.index as usize] += 1;
            }
            tags.push(AccessTag {
                reg: r.reg,
                index: r.index,
                pipeline: dest,
                stage: r.stage,
                speculative: r.speculative,
            });
        }
        debug_assert!(tags.windows(2).all(|w| w[0].stage <= w[1].stage));
        fl.pkt.tags = tags;
    }

    fn dec_inflight(&mut self, tag: &AccessTag) {
        if tag.reg != REG_STAGE_SENTINEL && tag.index != INDEX_ARRAY_LEVEL {
            let c = &mut self.inflight[tag.reg.index()][tag.index as usize];
            *c = c.saturating_sub(1);
        }
    }

    /// A packet exits the final stage.
    fn complete(&mut self, pl: usize, fl: Flight) {
        if S::ENABLED {
            TraceCtx::new(self.cycle, pl as u16, (self.stages - 1) as u16)
                .emit(&mut self.sink, EventKind::Egress { pkt: fl.pkt.id });
        }
        debug_assert!(
            fl.pkt.tags.is_empty(),
            "packet exited with unvisited tags: {:?}",
            fl.pkt.tags
        );
        self.report.result.outputs.insert(
            fl.pkt.id,
            fl.pkt.fields[..self.prog.declared_fields].to_vec(),
        );
        self.report.completions.push((fl.pkt.id, self.cycle));
        self.report.completed += 1;
        if fl.pkt.ecn {
            self.report.ecn_marked += 1;
        }
    }

    /// Background dynamic sharding (Figure 6 / LPT), with the in-flight
    /// guard and atomic state movement.
    fn remap(&mut self) {
        for ri in 0..self.prog.regs.len() {
            if !self.prog.regs[ri].shardable {
                continue;
            }
            match self.cfg.sharding {
                ShardingMode::Dynamic => {
                    if let Some(mv) = shard::remap_heuristic(
                        &self.index_map[ri],
                        &self.access_ctr[ri],
                        &self.inflight[ri],
                        self.k,
                    ) {
                        self.apply_move(ri, mv);
                    }
                    // Counters reset each iteration (§3.4).
                    self.access_ctr[ri].iter_mut().for_each(|c| *c = 0);
                }
                ShardingMode::IdealPeriodic => {
                    // Ideal re-sharding: the Figure 6 balancer iterated
                    // to a fixed point over *cumulative* counters (no
                    // per-window reset). Per-window samples are noise at
                    // this granularity, and chasing them costs more
                    // throughput than it recovers; cumulative loads make
                    // the fixed point stable, so a balanced map is left
                    // untouched.
                    for mv in shard::remap_to_fixpoint(
                        &self.index_map[ri],
                        &self.access_ctr[ri],
                        &self.inflight[ri],
                        self.k,
                        64,
                    ) {
                        self.apply_move(ri, mv);
                    }
                }
                ShardingMode::Static | ShardingMode::Pinned => {}
            }
        }
    }

    fn apply_move(&mut self, reg: usize, mv: shard::Move) {
        let from = self.index_map[reg][mv.index] as usize;
        let value = self.regs[from][reg][mv.index];
        self.regs[mv.to][reg][mv.index] = value;
        self.index_map[reg][mv.index] = mv.to as u16;
        if S::ENABLED {
            TraceCtx::new(self.cycle, NO_LOC, NO_LOC).emit(
                &mut self.sink,
                EventKind::RemapMove {
                    reg: RegId(reg as u16),
                    index: mv.index as u32,
                    from: from as u16,
                    to: mv.to as u16,
                },
            );
        }
        self.report.remap_moves += 1;
    }

    /// Finalizes the report: aggregate the active register copies into
    /// the logical final state, collect queue statistics.
    fn finish(mut self) -> (RunReport, S) {
        let mut final_regs = Vec::with_capacity(self.prog.regs.len());
        for (ri, meta) in self.prog.regs.iter().enumerate() {
            let mut arr = Vec::with_capacity(meta.size as usize);
            for idx in 0..meta.size as usize {
                let pl = if meta.shardable {
                    self.index_map[ri][idx] as usize
                } else {
                    0
                };
                arr.push(self.regs[pl][ri][idx]);
            }
            final_regs.push(arr);
        }
        self.report.result.final_regs = final_regs;
        self.report.result.processed = self.report.completed;
        self.report.cycles = self.cycle;
        self.report.max_queue_depth = self
            .queues
            .iter()
            .flatten()
            .map(|q| q.max_occupancy())
            .max()
            .unwrap_or(0);
        (self.report, self.sink)
    }
}

/// Initial index-to-pipeline map per the sharding mode.
fn init_map(
    reg_index: usize,
    meta: &mp5_compiler::program::RegMeta,
    cfg: &SwitchConfig,
    k: usize,
) -> Vec<u16> {
    let n = meta.size as usize;
    if !meta.shardable {
        return vec![0; n];
    }
    match cfg.sharding {
        ShardingMode::Pinned => vec![0; n],
        ShardingMode::Dynamic | ShardingMode::IdealPeriodic => {
            (0..n).map(|i| (i % k) as u16).collect()
        }
        ShardingMode::Static => {
            // "sharded randomly across pipelines at compile time and
            // never updated" — a seeded hash spreads the indexes.
            (0..n)
                .map(|i| {
                    (mp5_types::hash2(cfg.seed as i64 ^ (reg_index as i64) << 32, i as i64)
                        % k as i64) as u16
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_banzai::BanzaiSwitch;
    use mp5_compiler::{compile, Target};
    use mp5_traffic::TraceBuilder;

    const COUNTER: &str = "struct Packet { int seq; };
        int count = 0;
        void func(struct Packet p) { count = count + 1; p.seq = count; }";

    const SHARDED: &str = "struct Packet { int h; int out; };
        int tbl[64] = {0};
        void func(struct Packet p) {
            tbl[p.h % 64] = tbl[p.h % 64] + 1;
            p.out = tbl[p.h % 64];
        }";

    const STATELESS: &str = "struct Packet { int a; int b; };
        void func(struct Packet p) { p.b = p.a * 2 + 1; }";

    fn run_both(
        src: &str,
        cfg: SwitchConfig,
        n: usize,
        seed: u64,
    ) -> (mp5_banzai::RunResult, RunReport) {
        let prog = compile(src, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(n, seed).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::new(prog, cfg).run(trace);
        (reference, report)
    }

    #[test]
    fn try_run_reports_cycle_cap_violation() {
        let prog = compile(COUNTER, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(50, 7).build(nf, |_, _, _| {});
        let cfg = SwitchConfig {
            max_cycles: Some(1),
            ..SwitchConfig::mp5(4)
        };
        let err = Mp5Switch::new(prog, cfg)
            .try_run(trace)
            .expect_err("1-cycle cap cannot drain 50 packets");
        assert_eq!(err.cap, 1);
        assert!(
            err.ingress + err.in_lanes + err.queued + err.channel > 0,
            "violation snapshot locates the stuck work: {err}"
        );
        assert!(err.to_string().contains("exceeded 1 cycles"));
    }

    #[test]
    fn stateless_program_runs_at_line_rate() {
        let (reference, report) = run_both(STATELESS, SwitchConfig::mp5(4), 2000, 1);
        assert_eq!(report.completed, 2000);
        assert!(report.result.equivalent_to(&reference));
        assert!(
            report.normalized_throughput() > 0.95,
            "stateless must hit line rate, got {}",
            report.normalized_throughput()
        );
        assert_eq!(report.phantoms_generated, 0);
    }

    #[test]
    fn global_counter_is_functionally_equivalent() {
        let (reference, report) = run_both(COUNTER, SwitchConfig::mp5(4), 1000, 2);
        assert_eq!(report.completed, 1000);
        assert!(
            report.result.equivalent_to(&reference),
            "MP5 must match the single pipeline exactly"
        );
    }

    #[test]
    fn global_counter_throughput_is_one_over_k() {
        for k in [2usize, 4, 8] {
            let (_, report) = run_both(COUNTER, SwitchConfig::mp5(k), 2000, 3);
            let t = report.normalized_throughput();
            let ideal = 1.0 / k as f64;
            assert!(
                (t - ideal).abs() / ideal < 0.25,
                "k={k}: got {t}, expected ~{ideal} (fundamental limit, §3.5.2)"
            );
        }
    }

    #[test]
    fn sharded_table_is_equivalent_and_fast() {
        let (reference, report) = run_both(SHARDED, SwitchConfig::mp5(4), 4000, 4);
        assert!(report.result.equivalent_to(&reference));
        assert!(
            report.normalized_throughput() > 0.5,
            "64-entry table over 4 pipelines should parallelize, got {}",
            report.normalized_throughput()
        );
        assert!(report.steered > 0, "sharding must steer packets");
    }

    #[test]
    fn no_d4_violates_c1_but_mp5_does_not() {
        // Two stateful stages, Figure-3 style: half the packets
        // serialize on a hot state in the first stateful stage, the
        // rest fly past and (without D4) overtake them at the second —
        // exactly the failure Table II illustrates.
        let src = "struct Packet { int a; int b; int o; };
            int r1[2] = {0};
            int r2[64] = {0};
            void func(struct Packet p) {
                if (p.a == 0) { r1[0] = r1[0] + 1; }
                r2[p.b % 64] = r2[p.b % 64] + 1;
                p.o = r2[p.b % 64];
            }";
        let prog = compile(src, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(4000, 5).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..2);
            f[1] = r.gen_range(0..64);
        });
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());

        let mp5 = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        assert_eq!(
            mp5.result.access_log, reference.access_log,
            "with D4, per-state access order must be the arrival order"
        );
        assert!(mp5.result.equivalent_to(&reference));

        let nod4 = Mp5Switch::new(prog, SwitchConfig::no_d4(4)).run(trace);
        assert_ne!(
            nod4.result.access_log, reference.access_log,
            "without D4 the access order must diverge under contention"
        );
        assert!(
            !nod4.result.state_equivalent_to(&reference),
            "the reordering must be functionally visible in packet outputs"
        );
    }

    #[test]
    fn naive_design_caps_at_one_over_k() {
        let (reference, report) = run_both(SHARDED, SwitchConfig::naive(4), 2000, 6);
        assert!(
            report.result.equivalent_to(&reference),
            "naive is still correct"
        );
        let t = report.normalized_throughput();
        assert!(
            t < 0.30 && t > 0.15,
            "naive with k=4 should sit near 0.25, got {t}"
        );
    }

    #[test]
    fn ideal_at_least_as_fast_as_mp5() {
        let (_, mp5) = run_both(SHARDED, SwitchConfig::mp5(4), 3000, 7);
        let (reference, ideal) = run_both(SHARDED, SwitchConfig::ideal(4), 3000, 7);
        assert!(ideal.result.equivalent_to(&reference));
        assert!(
            ideal.normalized_throughput() >= mp5.normalized_throughput() - 0.05,
            "ideal {} vs mp5 {}",
            ideal.normalized_throughput(),
            mp5.normalized_throughput()
        );
    }

    #[test]
    fn dynamic_beats_static_on_skew() {
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let pat = mp5_traffic::AccessPattern::paper_skewed();
        let trace = TraceBuilder::new(6000, 8).build(nf, |r, _, f| {
            f[0] = pat.draw(64, r) as i64;
        });
        let dynamic = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let static_ = Mp5Switch::new(prog, SwitchConfig::static_shard(4, 99)).run(trace);
        assert!(
            dynamic.normalized_throughput() >= static_.normalized_throughput() * 0.99,
            "dynamic {} should be >= static {}",
            dynamic.normalized_throughput(),
            static_.normalized_throughput()
        );
        assert!(dynamic.remap_moves > 0, "the heuristic must act on skew");
    }

    #[test]
    fn bounded_fifos_drop_under_overload_and_cascade() {
        let (_, report) = run_both(COUNTER, SwitchConfig::mp5(4).with_hardware_fifos(), 3000, 9);
        // The global counter admits 1/k of line rate; bounded FIFOs must
        // shed the excess as phantom + data drops, never deadlock.
        assert!(report.drops.phantom_fifo_full > 0);
        assert!(report.drops.data_no_phantom > 0);
        assert_eq!(report.completed + report.drops.total_data(), report.offered);
    }

    #[test]
    fn speculative_predicate_program_is_equivalent() {
        let src = "struct Packet { int h; int o; };
            int gate = 0;
            int r[32] = {0};
            void func(struct Packet p) {
                gate = 1 - gate;
                if (gate == 1) { r[p.h % 32] = r[p.h % 32] + 1; }
                p.o = gate;
            }";
        let (reference, report) = run_both(src, SwitchConfig::mp5(4), 1500, 10);
        assert!(report.result.equivalent_to(&reference));
        assert!(report.wasted_cycles > 0, "false branches must waste cycles");
    }

    #[test]
    fn pinned_stateful_index_program_is_equivalent() {
        let src = "struct Packet { int h; int o; };
            int ptr = 0;
            int r[16] = {0};
            void func(struct Packet p) {
                ptr = (ptr + 1) % 16;
                r[ptr % 16] = r[ptr % 16] + p.h;
                p.o = ptr;
            }";
        let (reference, report) = run_both(src, SwitchConfig::mp5(4), 1000, 11);
        assert!(report.result.equivalent_to(&reference));
    }

    #[test]
    fn traced_run_matches_untraced_and_records_events() {
        use mp5_trace::{EventKind, MemSink};
        let prog = compile(SHARDED, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(500, 21).build(nf, |r, _, f| {
            use rand::Rng;
            f[0] = r.gen_range(0..1_000);
        });
        let plain = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
        let (traced, sink) =
            Mp5Switch::with_sink(prog, SwitchConfig::mp5(4), MemSink::new()).run_traced(trace);
        // The sink only observes: the run is bit-identical.
        assert_eq!(plain.result.final_regs, traced.result.final_regs);
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.completions, traced.completions);
        let evs = sink.into_events();
        let count = |pred: fn(&EventKind) -> bool| evs.iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::Ingress { .. })), 500);
        assert_eq!(count(|k| matches!(k, EventKind::Egress { .. })), 500);
        assert!(count(|k| matches!(k, EventKind::PhantomEmit { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::DataMatch { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::Steer { .. })) > 0);
        assert_eq!(
            count(|k| matches!(k, EventKind::Execute { queued: true, .. })),
            count(|k| matches!(k, EventKind::PopData { .. })),
            "every queued execution pairs with a FIFO pop"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (_, a) = run_both(SHARDED, SwitchConfig::mp5(4), 1000, 12);
        let (_, b) = run_both(SHARDED, SwitchConfig::mp5(4), 1000, 12);
        assert_eq!(a.result.final_regs, b.result.final_regs);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn larger_packets_reach_line_rate_on_counter() {
        // With 1400 B packets the inter-arrival budget is ~22 slots, so
        // even the serialized counter keeps up at k=4 (Figure 7d's
        // effect).
        let prog = compile(COUNTER, &Target::default()).unwrap();
        let nf = prog.num_fields();
        let trace = TraceBuilder::new(1500, 13)
            .size(mp5_traffic::SizeDist::Fixed(1400))
            .build(nf, |_, _, _| {});
        let report = Mp5Switch::new(prog, SwitchConfig::mp5(4)).run(trace);
        assert!(
            report.normalized_throughput() > 0.95,
            "got {}",
            report.normalized_throughput()
        );
    }
}
