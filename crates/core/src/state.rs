//! Checkpointable switch state.
//!
//! [`SwitchState`] is a plain-data mirror of every live field of an
//! [`crate::Mp5Switch`] at a **cycle boundary** (between two `tick()`
//! calls): register files, FIFO occupancy (data *and* phantom lanes,
//! including the recovery queue), the remap table, crossbar and
//! scheduler cursors, the phantom channel's in-flight set, cycle
//! counters, and the full [`crate::RunReport`] accumulated so far.
//!
//! The mirror exists so checkpoints can be serialized without exposing
//! the switch's runtime representation: every hash-map becomes a
//! **sorted `Vec`** (deterministic bytes, JSON-friendly keys), every
//! fabric type becomes a struct of public plain fields, and derived
//! views (the phantom directory, occupancy indexes, engine scratch
//! buffers) are omitted entirely — `Mp5Switch::try_restore_with`
//! rebuilds them. The contract, enforced by the snapshot proptest
//! suite, is *bit-identical continuation*: a switch restored from a
//! checkpoint produces the same `RunReport` and traced `stream_hash`
//! as the uninterrupted run, on both exec paths and both engines.

use mp5_types::{Packet, PacketId, RegId, Value};
use serde::{Deserialize, Serialize};

/// A packet in flight inside the switch (mirror of the runtime
/// `Flight`): the packet, its switch-entry order key, and the pipeline
/// it was sprayed onto.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightState {
    /// The packet (header fields, tags, metadata).
    pub pkt: Packet,
    /// Switch entry order `(arrival byte-time, ingress port)`.
    pub order: (u64, u64),
    /// Pipeline assigned at admission.
    pub ingress: u16,
}

/// A phantom directory key (mirror of `mp5_fabric::PhantomKey`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeySnap {
    /// The data packet this phantom stands in for.
    pub pkt: PacketId,
    /// The register array of the access.
    pub reg: RegId,
    /// The resolved register index of the access.
    pub index: u32,
}

/// One queued FIFO entry (mirror of `mp5_fabric::Entry<Flight>`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntrySnap {
    /// A placeholder for a data packet that has not yet arrived.
    Phantom {
        /// Directory key.
        key: KeySnap,
        /// Ordering timestamp.
        ts: (u64, u64),
    },
    /// An actual data packet, ready for stateful processing.
    Data {
        /// The queued flight.
        item: FlightState,
        /// Ordering timestamp.
        ts: (u64, u64),
    },
    /// A cancelled placeholder (free entries reclaim without consuming
    /// service; non-free ones cost one pop cycle, per §3.3).
    Stale {
        /// Ordering timestamp.
        ts: (u64, u64),
        /// Whether the entry reclaims without consuming service.
        free: bool,
    },
}

/// FIFO statistics counters (mirror of `mp5_fabric::FifoStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnap {
    /// Phantoms dropped on full lanes.
    pub phantom_drops: u64,
    /// Data packets dropped because their phantom was missing.
    pub data_drops_no_phantom: u64,
    /// Data packets dropped on full lanes.
    pub data_drops_full: u64,
    /// Pop cycles consumed by stale entries.
    pub stale_cycles: u64,
    /// Pop cycles blocked behind a phantom head.
    pub blocked_cycles: u64,
    /// Lost-phantom data packets re-admitted via the recovery queue.
    pub recovered: u64,
}

/// One physical FIFO lane: its stable head sequence number, occupancy
/// high-water mark, and queued entries head-to-tail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneSnap {
    /// Sequence number of the head element (keeps `FifoAddr`s stable
    /// across restore).
    pub head_seq: u64,
    /// Occupancy high-water mark.
    pub max_occupancy: usize,
    /// Entries, head to tail.
    pub entries: Vec<EntrySnap>,
}

/// A whole logical FIFO: `k` lanes plus the timestamp-sorted recovery
/// queue. The phantom directory and occupancy index are derived views
/// and are rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoSnap {
    /// Per-lane capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// The lanes, in pipeline order.
    pub lanes: Vec<LaneSnap>,
    /// Recovery queue (data entries only), ascending timestamp.
    pub recovered: Vec<EntrySnap>,
    /// Recovery-queue high-water mark.
    pub max_recovered: usize,
    /// Statistics counters.
    pub stats: StatsSnap,
}

/// One per-(pipeline, stage) input queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueSnap {
    /// The paper's logical FIFO of `k` lanes.
    Logical(FifoSnap),
    /// The ideal-MP5 per-index queue bank (`per_index_fifos`), as
    /// `(register index, sub-queue)` pairs in ascending index order.
    PerIndex {
        /// Live sub-queues, ascending register index.
        subs: Vec<(u32, FifoSnap)>,
        /// Total-occupancy high-water mark.
        max_total: usize,
        /// Bound applied to each sub-queue.
        capacity: Option<usize>,
    },
}

/// A phantom in flight on the dedicated channel (mirror of the runtime
/// `PhantomMsg` plus its channel position).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelFlightSnap {
    /// Directory key of the phantom.
    pub key: KeySnap,
    /// Ordering timestamp it will freeze in the destination FIFO.
    pub ts: (u64, u64),
    /// Destination pipeline.
    pub dest: u16,
    /// Source lane recorded for FIFO placement.
    pub lane: u16,
    /// Current hop position (stage the phantom has reached).
    pub at: u16,
    /// Destination stage.
    pub dest_stage: u16,
}

/// The phantom channel: geometry, statistics, and in-flight phantoms in
/// injection order (Invariant 1 delivery order depends on it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelSnap {
    /// Stage count of the interconnect.
    pub stages: usize,
    /// In-flight high-water mark.
    pub max_in_flight: usize,
    /// Phantoms delivered so far.
    pub delivered: u64,
    /// In-flight phantoms, injection order.
    pub flights: Vec<ChannelFlightSnap>,
}

/// One inter-stage crossbar's statistics (`k×k` route matrix row-major,
/// plus the count of cycles with at least one off-diagonal grant).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XbarSnap {
    /// Route counts, `k×k` row-major.
    pub routed: Vec<u64>,
    /// Cycles with at least one steer.
    pub steer_cycles: u64,
}

/// Mirror of `mp5_banzai::RunResult` with the hash maps flattened to
/// sorted vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultSnap {
    /// Final contents of every register array.
    pub final_regs: Vec<Vec<Value>>,
    /// Final declared header fields of each completed packet, ascending
    /// packet id.
    pub outputs: Vec<(PacketId, Vec<Value>)>,
    /// Per-state packet access order, ascending `(register, index)`.
    pub access_log: Vec<(RegId, u32, Vec<PacketId>)>,
    /// Packets processed to completion.
    pub processed: u64,
}

/// Mirror of [`crate::DropCounts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropsSnap {
    /// Phantoms dropped on full FIFOs.
    pub phantom_fifo_full: u64,
    /// Data packets dropped because their phantom was missing.
    pub data_no_phantom: u64,
    /// Data packets dropped on full FIFOs.
    pub data_fifo_full: u64,
    /// Stateless packets dropped in favor of starving stateful packets.
    pub starvation: u64,
}

/// Mirror of [`crate::FaultReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnap {
    /// Faults fired by the plan.
    pub injected: u64,
    /// Transient faults fully absorbed.
    pub recovered: u64,
    /// Faults acknowledged as permanent degradation.
    pub degraded: u64,
    /// Cycles spent with at least one dead pipeline.
    pub degraded_cycles: u64,
    /// Indexes evacuated off dead pipelines.
    pub evacuated_indexes: u64,
    /// Phantoms lost to injected drops / forced overflow.
    pub phantoms_dropped: u64,
    /// Lost-phantom data packets recovered into FIFO order.
    pub phantoms_recovered: u64,
    /// Pipelines dead so far (ascending).
    pub dead_pipelines: Vec<u16>,
    /// Stage-cycles suppressed by injected stalls.
    pub stall_cycles: u64,
    /// Crossbar grants delayed by injected grant latency.
    pub delayed_grants: u64,
    /// Remap rounds aborted by injected control-plane failures.
    pub aborted_remaps: u64,
}

/// Mirror of [`crate::RunReport`] with `BTreeMap`/`FastMap` fields
/// flattened to sorted vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportSnap {
    /// Functional-equivalence evidence.
    pub result: ResultSnap,
    /// Packets offered to the switch.
    pub offered: u64,
    /// Packets processed to completion.
    pub completed: u64,
    /// Drops by cause.
    pub drops: DropsSnap,
    /// Total simulated cycles so far.
    pub cycles: u64,
    /// Duration of the input stream in byte-times.
    pub input_duration: u64,
    /// Completion sequence `(packet, cycle)` in exit order.
    pub completions: Vec<(PacketId, u64)>,
    /// Highest FIFO occupancy observed anywhere.
    pub max_queue_depth: usize,
    /// Packets steered across pipelines.
    pub steered: u64,
    /// Phantom packets generated.
    pub phantoms_generated: u64,
    /// Pop cycles wasted on speculative-false phantoms.
    pub wasted_cycles: u64,
    /// State migrations performed by the sharding runtime.
    pub remap_moves: u64,
    /// Packets that exited with the ECN mark set.
    pub ecn_marked: u64,
    /// Byte-times per pipeline cycle.
    pub cycle_len: u64,
    /// Per-`(pipeline, stage)` drop counts, ascending location.
    pub stage_drops: Vec<(u16, u16, u64)>,
    /// Fault-injection accounting.
    pub fault: FaultSnap,
}

/// Complete live state of an [`crate::Mp5Switch`] at a cycle boundary.
///
/// Produced by `Mp5Switch::extract_state`, consumed by
/// `Mp5Switch::try_restore_with`. Everything the next `tick()` can
/// observe is here; engine scratch buffers (which are empty at the
/// boundary by construction) are not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchState {
    /// Simulated cycle count.
    pub cycle: u64,
    /// Ingress round-robin cursor.
    pub rr: usize,
    /// Register state, `[pipeline][register][index]`.
    pub regs: Vec<Vec<Vec<Value>>>,
    /// Index-to-pipeline map, `[register][index]` (D2).
    pub index_map: Vec<Vec<u16>>,
    /// Packet access counters per register index.
    pub access_ctr: Vec<Vec<u64>>,
    /// In-flight packet counters per register index (remap guard).
    pub inflight: Vec<Vec<u32>>,
    /// Input queues, `[pipeline][stage]`.
    pub queues: Vec<Vec<QueueSnap>>,
    /// Stage occupancy, `[pipeline][stage]`.
    pub lanes: Vec<Vec<Option<FlightState>>>,
    /// The phantom channel.
    pub channel: ChannelSnap,
    /// Per-stage crossbar statistics.
    pub crossbars: Vec<XbarSnap>,
    /// Phantoms cancelled while still on the channel, ascending key.
    pub cancelled: Vec<KeySnap>,
    /// Phantoms lost to injected faults, awaiting their data packet,
    /// ascending key.
    pub lost: Vec<KeySnap>,
    /// Arrived packets waiting for an ingress slot, queue order.
    pub ingress_q: Vec<FlightState>,
    /// Future arrivals, ascending entry order.
    pub arrivals: Vec<Packet>,
    /// Steered packets held back by injected grant delays:
    /// `(ready cycle, dest pipeline, stage, flight)`, insertion order.
    pub pending_grants: Vec<(u64, u16, usize, FlightState)>,
    /// Completed packets not yet drained by the caller,
    /// `(packet, exit cycle)` in completion order.
    pub egress_buf: Vec<(Packet, u64)>,
    /// Per-pipeline parked-stage bitmask (batch exec path).
    pub park_mask: Vec<u64>,
    /// Per-pipeline incoming-row bitmask (zero at a boundary; kept for
    /// completeness).
    pub inc_mask: Vec<u64>,
    /// Per-pipeline maybe-non-empty-FIFO bitmask (conservative).
    pub queue_mask: Vec<u64>,
    /// Per-pipeline liveness (`true` = killed by an injected fault).
    pub dead: Vec<bool>,
    /// Dead pipelines whose evacuation-complete event was emitted.
    pub evac_done: Vec<bool>,
    /// Indexes evacuated off each pipeline so far.
    pub evac_counts: Vec<u64>,
    /// The report accumulated so far.
    pub report: ReportSnap,
}

/// Why a [`SwitchState`] could not be injected into a fresh switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The target configuration is structurally invalid.
    Config(crate::ConfigError),
    /// The state's shape does not match the target program/configuration
    /// (wrong pipeline count, register layout, stage count, …).
    Incompatible(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Config(e) => write!(f, "invalid configuration: {e}"),
            RestoreError::Incompatible(why) => {
                write!(f, "snapshot incompatible with target switch: {why}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<crate::ConfigError> for RestoreError {
    fn from(e: crate::ConfigError) -> Self {
        RestoreError::Config(e)
    }
}

/// Why a hot-swap was rejected (the new program's state layout is not
/// compatible with the running one's). Rejection leaves the running
/// switch untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The declared packet field layout differs.
    FieldLayout {
        /// Running program's field names.
        old: Vec<String>,
        /// Candidate program's field names.
        new: Vec<String>,
    },
    /// The stage counts differ (in-flight packets hold stage-resolved
    /// tags).
    StageCount {
        /// Running program's stage count.
        old: usize,
        /// Candidate program's stage count.
        new: usize,
    },
    /// The prologue (resolution) depths differ.
    PrologueDepth {
        /// Running program's prologue depth.
        old: usize,
        /// Candidate program's prologue depth.
        new: usize,
    },
    /// The register counts differ.
    RegisterCount {
        /// Running program's register count.
        old: usize,
        /// Candidate program's register count.
        new: usize,
    },
    /// Register `index` differs in name, size, home stage, or
    /// shardability — queued phantoms and the index map address it by
    /// exactly those coordinates.
    RegisterLayout {
        /// Index of the mismatched register.
        index: usize,
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::FieldLayout { old, new } => {
                write!(f, "packet field layout differs: {old:?} -> {new:?}")
            }
            SwapError::StageCount { old, new } => {
                write!(f, "stage count differs: {old} -> {new}")
            }
            SwapError::PrologueDepth { old, new } => {
                write!(f, "prologue depth differs: {old} -> {new}")
            }
            SwapError::RegisterCount { old, new } => {
                write!(f, "register count differs: {old} -> {new}")
            }
            SwapError::RegisterLayout { index, detail } => {
                write!(f, "register {index} layout differs: {detail}")
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// The ledger of a completed hot-swap: evidence that no state and no
/// phantom was lost while the program changed under live traffic.
///
/// The invariants the chaos/serve suites assert are `migrated ==
/// evacuated` (every register index read out of the old program's
/// ownership was written into the new one's) and `lost_phantoms == 0`
/// (every queued or in-flight phantom still addresses a valid register
/// coordinate under the new program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapReport {
    /// Cycle boundary at which the swap happened.
    pub cycle: u64,
    /// Register indexes written into the new program's state.
    pub migrated: u64,
    /// Register indexes read out of the old program's state.
    pub evacuated: u64,
    /// Queued/in-flight phantoms left addressing an invalid register
    /// coordinate (always 0 for an accepted swap).
    pub lost_phantoms: u64,
}

impl SwapReport {
    /// Does the ledger close? (`migrated == evacuated`, zero lost
    /// phantoms.)
    pub fn closed(&self) -> bool {
        self.migrated == self.evacuated && self.lost_phantoms == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_report_ledger_closes() {
        let ok = SwapReport {
            cycle: 10,
            migrated: 64,
            evacuated: 64,
            lost_phantoms: 0,
        };
        assert!(ok.closed());
        assert!(!SwapReport {
            lost_phantoms: 1,
            ..ok
        }
        .closed());
        assert!(!SwapReport { migrated: 63, ..ok }.closed());
    }

    #[test]
    fn errors_render_their_cause() {
        let e = SwapError::RegisterLayout {
            index: 2,
            detail: "size 64 -> 128".into(),
        };
        assert!(e.to_string().contains("register 2"));
        let r = RestoreError::Incompatible("pipeline count 4 != 8".into());
        assert!(r.to_string().contains("pipeline count"));
    }

    #[test]
    fn state_round_trips_through_json() {
        let snap = SwitchState {
            cycle: 7,
            rr: 1,
            regs: vec![vec![vec![1, 2]]],
            index_map: vec![vec![0, 0]],
            access_ctr: vec![vec![3, 0]],
            inflight: vec![vec![0, 1]],
            queues: vec![vec![QueueSnap::Logical(FifoSnap {
                capacity: Some(8),
                lanes: vec![LaneSnap {
                    head_seq: 4,
                    max_occupancy: 2,
                    entries: vec![EntrySnap::Stale {
                        ts: (9, 0),
                        free: true,
                    }],
                }],
                recovered: vec![],
                max_recovered: 0,
                stats: StatsSnap::default(),
            })]],
            lanes: vec![vec![None]],
            channel: ChannelSnap {
                stages: 1,
                max_in_flight: 0,
                delivered: 0,
                flights: vec![],
            },
            crossbars: vec![XbarSnap {
                routed: vec![0],
                steer_cycles: 0,
            }],
            cancelled: vec![],
            lost: vec![],
            ingress_q: vec![],
            arrivals: vec![],
            pending_grants: vec![],
            egress_buf: vec![],
            park_mask: vec![0],
            inc_mask: vec![0],
            queue_mask: vec![0],
            dead: vec![false],
            evac_done: vec![false],
            evac_counts: vec![0],
            report: ReportSnap::default(),
        };
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: SwitchState = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
