//! The deterministic parallel cycle engine's machinery.
//!
//! [`WorkerPool`] is a persistent pool of worker threads with a
//! rendezvous-style [`WorkerPool::exchange`]: the coordinator hands each
//! worker at most one job, blocks until every job's result is back, and
//! only then proceeds — a barrier per simulation cycle, with **no
//! per-cycle thread spawning**. Jobs *own* the per-pipeline state they
//! operate on (moved in and moved back out), so there is no shared
//! mutable state, no locking, and no interior mutability anywhere in the
//! per-cycle hot path; determinism is purely a matter of the coordinator
//! merging the returned results in pipeline order (see `DESIGN.md` §10).
//!
//! The pool is deliberately generic over the job and result types so the
//! MP5 switch (`mp5-core`) and the recirculation baseline
//! (`mp5-baselines`) can both drive it.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// A persistent pool of `n` worker threads executing a fixed job
/// function, fed by one rendezvous per simulation cycle.
///
/// Worker `i` owns a pair of bounded channels: the coordinator pushes a
/// job down one and blocks on the other for the result. Workers park in
/// `recv()` between cycles, so an idle pool costs nothing but memory.
/// Dropping the pool closes the job channels, which terminates and joins
/// every worker.
pub struct WorkerPool<J: Send + 'static, R: Send + 'static> {
    txs: Vec<SyncSender<J>>,
    rxs: Vec<Receiver<R>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawns `workers` (≥ 1) persistent threads, each running `f` on
    /// every job it receives until the pool is dropped.
    pub fn new<F>(workers: usize, f: F) -> Self
    where
        F: Fn(J) -> R + Send + Clone + 'static,
    {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (jtx, jrx) = sync_channel::<J>(1);
            let (rtx, rrx) = sync_channel::<R>(1);
            let f = f.clone();
            let handle = std::thread::Builder::new()
                .name(format!("mp5-worker-{i}"))
                .spawn(move || {
                    // `recv` fails when the coordinator drops its sender:
                    // that is the shutdown signal.
                    while let Ok(job) = jrx.recv() {
                        if rtx.send(f(job)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawning an engine worker thread");
            txs.push(jtx);
            rxs.push(rrx);
            handles.push(handle);
        }
        WorkerPool { txs, rxs, handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Runs one barrier round: sends `jobs[i]` to worker `i`, blocks
    /// until every worker answered, and returns the results **in worker
    /// order** (`jobs.len()` may be smaller than the pool on the last
    /// uneven cycle; it must never be larger).
    pub fn exchange(&mut self, jobs: Vec<J>) -> Vec<R> {
        assert!(
            jobs.len() <= self.txs.len(),
            "more jobs ({}) than workers ({})",
            jobs.len(),
            self.txs.len()
        );
        let n = jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            self.txs[i].send(job).expect("engine worker thread alive");
        }
        (0..n)
            .map(|i| self.rxs[i].recv().expect("engine worker returns"))
            .collect()
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for WorkerPool<J, R> {
    fn drop(&mut self) {
        // Closing the job channels wakes every parked worker with a
        // RecvError; then join so no thread outlives the switch.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static, R: Send + 'static> std::fmt::Debug for WorkerPool<J, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

/// Contiguous shard boundaries for distributing `n` ordered items over
/// `workers` workers: worker `w` gets `n / workers` items plus one of
/// the `n % workers` leftovers, front-loaded, so concatenating the
/// ranges in worker order restores `0..n` exactly. The engines shard
/// *ranges* of per-pipeline state (not packet lists) with this, which
/// is what keeps worker order equal to pipeline order and the merge
/// deterministic.
pub fn shard_ranges(n: usize, workers: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    debug_assert!(workers >= 1, "sharding over zero workers");
    let base = n / workers;
    let rem = n % workers;
    let mut start = 0usize;
    (0..workers).map(move |w| {
        let len = base + usize::from(w < rem);
        let range = start..start + len;
        start += len;
        range
    })
}

/// Wall-clock duration of every simulated cycle, recorded by
/// `Mp5Switch::try_run_timed` for the `mp5bench` latency percentiles.
#[derive(Debug, Clone, Default)]
pub struct CycleTimings {
    /// Nanoseconds per cycle, in simulation order.
    pub nanos: Vec<u64>,
}

impl CycleTimings {
    /// The `p`-th percentile (0–100, nearest-rank) of per-cycle wall
    /// time in nanoseconds; 0 when no cycles were recorded.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.nanos.is_empty() {
            return 0;
        }
        let mut v = self.nanos.clone();
        v.sort_unstable();
        // Classic nearest-rank: the ⌈p/100·N⌉-th smallest sample.
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * v.len() as f64).ceil() as usize;
        v[rank.saturating_sub(1).min(v.len() - 1)]
    }

    /// Mean nanoseconds per cycle (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.nanos.is_empty() {
            0.0
        } else {
            self.nanos.iter().sum::<u64>() as f64 / self.nanos.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_round_trips_jobs_in_worker_order() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(3, |x| x * 2);
        for _ in 0..100 {
            assert_eq!(pool.exchange(vec![1, 2, 3]), vec![2, 4, 6]);
        }
        // Uneven final round: fewer jobs than workers.
        assert_eq!(pool.exchange(vec![10]), vec![20]);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool: WorkerPool<(), ()> = WorkerPool::new(4, |()| ());
        drop(pool); // must not hang or leak
    }

    #[test]
    fn shard_ranges_partition_in_order() {
        for n in 0..20 {
            for workers in 1..6 {
                let ranges: Vec<_> = shard_ranges(n, workers).collect();
                assert_eq!(ranges.len(), workers);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} workers={workers}");
                // Front-loaded remainder: sizes never differ by more
                // than one and never increase.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
                assert!(sizes[0] - sizes[workers - 1] <= 1);
            }
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let t = CycleTimings {
            nanos: (1..=100).collect(),
        };
        assert_eq!(t.percentile(50.0), 50);
        assert_eq!(t.percentile(99.0), 99);
        assert_eq!(t.percentile(0.0), 1);
        assert_eq!(t.percentile(100.0), 100);
        assert_eq!(CycleTimings::default().percentile(50.0), 0);
        assert!((t.mean() - 50.5).abs() < 1e-9);
    }
}
