//! Switch configuration.

/// Which cycle engine executes the simulation.
///
/// Both engines implement the *same* machine: the parallel engine
/// shards the per-(pipeline, stage) work phase of every cycle across a
/// persistent worker pool and merges the buffered side effects in
/// pipeline order, so its output — the [`crate::RunReport`], the final
/// register state, and (under tracing) the exact event stream — is
/// **bit-identical** to the sequential engine's. See `DESIGN.md` §10
/// for the determinism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EngineMode {
    /// One thread simulates every pipeline×stage in program order (the
    /// historical engine; still the default).
    Sequential,
    /// The work phase of each cycle is sharded over `n` persistent
    /// worker threads (clamped to the pipeline count at run time).
    /// `Parallel(0)` is rejected by [`SwitchConfig::validate`]; use
    /// [`EngineMode::parallel_auto`] to size from the host.
    Parallel(usize),
}

impl EngineMode {
    /// A parallel engine sized to the host's available parallelism
    /// (falls back to `Parallel(1)` when it cannot be determined).
    pub fn parallel_auto() -> Self {
        EngineMode::Parallel(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this mode will use for a `k`-pipeline
    /// switch: `0` for the sequential engine, `min(n, k)` for
    /// `Parallel(n)` (extra workers would never receive work).
    pub fn workers_for(&self, pipelines: usize) -> usize {
        match *self {
            EngineMode::Sequential => 0,
            EngineMode::Parallel(n) => n.min(pipelines).max(1),
        }
    }
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    /// Parses the CLI spelling used by `mp5run --engine` and `mp5bench`:
    /// `seq`, `par` (auto-sized from the host), or `par:N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "seq" | "sequential" => Ok(EngineMode::Sequential),
            "par" | "parallel" => Ok(EngineMode::parallel_auto()),
            other => match other.strip_prefix("par:") {
                Some(n) => match n.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(EngineMode::Parallel(n)),
                    _ => Err(format!("invalid worker count '{n}' (need an integer >= 1)")),
                },
                None => Err(format!(
                    "unknown engine '{other}' (expected seq, par, or par:N)"
                )),
            },
        }
    }
}

/// Which implementation of the per-cycle work phase executes packets.
///
/// Both paths implement the same machine and produce **bit-identical**
/// [`crate::RunReport`]s; they differ only in how the per-(pipeline,
/// stage) inner loop is organized. Traced runs (`TraceSink::ENABLED`)
/// always use the scalar path so the event stream keeps its historical
/// interleaving — the batch path is an untraced-hot-path optimization,
/// selected statically so traced builds pay nothing for the check. See
/// `DESIGN.md` §13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ExecPath {
    /// The historical packet-at-a-time loop: each (pipeline, stage)
    /// slot resolves/executes its packet inline as the scheduler visits
    /// it.
    Scalar,
    /// Struct-of-arrays batching (the default): the scheduler first
    /// *sweeps* every slot, packing chosen packets into a
    /// [`PacketBatch`](crate::switch) — fields in a flat matrix, lane
    /// metadata and verdict flags in parallel arrays — then executes
    /// each stage's lanes as one tight loop over the matrix, and
    /// finally *compacts*: verdicts, retirements and buffered side
    /// effects are applied in the scalar path's exact order.
    #[default]
    Batch,
}

impl std::str::FromStr for ExecPath {
    type Err = String;

    /// Parses the CLI spelling used by `mp5run --exec` and `mp5bench`:
    /// `scalar` or `batch`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(ExecPath::Scalar),
            "batch" | "soa" => Ok(ExecPath::Batch),
            other => Err(format!(
                "unknown exec path '{other}' (expected scalar or batch)"
            )),
        }
    }
}

impl std::fmt::Display for ExecPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecPath::Scalar => "scalar",
            ExecPath::Batch => "batch",
        })
    }
}

/// A structurally invalid [`SwitchConfig`], reported by
/// [`SwitchConfig::validate`] (and by `Mp5Switch::try_new` /
/// `Mp5Switch::try_with_sink`) instead of silently "fixing" the
/// configuration at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `pipelines` was zero.
    ZeroPipelines,
    /// `physical_pipelines` was smaller than the logical pipeline
    /// count. A logical MP5 can only use a *subset* of the chip, so the
    /// physical count must be at least the logical one. (Older versions
    /// silently clamped the value upward, hiding the mistake.)
    PhysicalPipelinesBelowLogical {
        /// The configured physical pipeline count.
        physical: usize,
        /// The logical pipeline count it must at least match.
        logical: usize,
    },
    /// `EngineMode::Parallel(0)` — a parallel engine needs at least one
    /// worker.
    ZeroWorkers,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPipelines => write!(f, "switch needs at least one pipeline"),
            ConfigError::PhysicalPipelinesBelowLogical { physical, logical } => write!(
                f,
                "physical_pipelines ({physical}) is smaller than the logical pipeline \
                 count ({logical}); a logical MP5 cannot outnumber the chip's pipelines"
            ),
            ConfigError::ZeroWorkers => {
                write!(
                    f,
                    "EngineMode::Parallel(0): need at least one worker thread"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How register state is distributed across pipelines (design principle
/// D2 and its ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ShardingMode {
    /// Paper behaviour: indexes start round-robin across pipelines and
    /// the Figure 6 heuristic re-balances them every
    /// [`SwitchConfig::remap_period`] cycles.
    Dynamic,
    /// D2 ablation: indexes are sharded randomly at "compile time"
    /// (seeded) and never moved.
    Static,
    /// All state pinned to pipeline 0 (the naive design of §3.1 /
    /// challenge #1, and the destination for unshardable arrays).
    Pinned,
    /// Ideal upper bound (§4.3.3): re-sharding by longest-processing-
    /// time assignment over the measured counters every period.
    IdealPeriodic,
}

/// How arriving packets are assigned to pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SprayMode {
    /// Uniformly spray arrivals round-robin over all pipelines (D1).
    RoundRobin,
    /// Send every packet to one pipeline (the naive design: throughput
    /// capped at `1/k` of line rate).
    SinglePipeline(usize),
}

/// Full configuration of an [`crate::Mp5Switch`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwitchConfig {
    /// Number of parallel pipelines `k` (paper default 4).
    pub pipelines: usize,
    /// Per-lane FIFO capacity; `None` = unbounded (the paper's
    /// "dynamically adapt FIFO sizes" mode used for sensitivity
    /// experiments). Paper hardware default: 8.
    pub fifo_capacity: Option<usize>,
    /// Cycles between runs of the sharding heuristic (paper: 100).
    pub remap_period: u64,
    /// State distribution policy.
    pub sharding: ShardingMode,
    /// Enable phantom packets (design principle D4). Disabling yields
    /// the no-D4 ablation, which violates C1.
    pub phantoms: bool,
    /// Ideal-MP5 option: one queue per register index (no head-of-line
    /// blocking, §3.5.2 limitation 2 removed).
    pub per_index_fifos: bool,
    /// Packet-to-pipeline assignment at ingress.
    pub spray: SprayMode,
    /// If set, a queued stateful packet older than this many cycles
    /// causes incoming stateless (tag-free) packets to be dropped in its
    /// favor (§3.4 "Handling starvation").
    pub starvation_threshold: Option<u64>,
    /// If set, mark a data packet's ECN bit when it joins a stateful
    /// stage FIFO whose occupancy exceeds this threshold (§3.4's
    /// backpressure suggestion). Marking never changes processing.
    pub ecn_threshold: Option<usize>,
    /// Seed for the Static sharding shuffle.
    pub seed: u64,
    /// Hard cap on simulated cycles (defense against livelock bugs);
    /// `None` = derived from the trace length.
    pub max_cycles: Option<u64>,
    /// Physical pipeline count governing the clock period (`64·k_phys`
    /// byte-times per cycle). Defaults to `pipelines`. Set by
    /// [`crate::partition`] when this switch is a *logical* MP5 using
    /// only a subset of the chip's pipelines (paper §3.1, footnote 1):
    /// the pipelines still run at the physical chip's rate `N·B/k_phys`.
    /// Must be `>= pipelines` (checked by [`SwitchConfig::validate`]).
    pub physical_pipelines: Option<usize>,
    /// Which cycle engine executes the simulation (results are
    /// bit-identical either way; see [`EngineMode`]).
    pub engine: EngineMode,
    /// Which work-phase implementation executes packets (results are
    /// bit-identical either way; see [`ExecPath`]).
    pub exec: ExecPath,
    /// Record per-packet artifacts in the report: the per-packet output
    /// field map, the completion list, and the per-index access log.
    /// Defaults to `true` (the historical behaviour every equivalence
    /// test relies on). Fabric-scale runs — millions of packets across
    /// many switches — turn this off so report memory stays O(registers)
    /// instead of O(packets); aggregate counters (`offered`,
    /// `completed`, drops, ECN marks, …) are always recorded.
    pub record_detail: bool,
}

impl SwitchConfig {
    /// The paper's default MP5 configuration with `k` pipelines and
    /// adaptive (unbounded) FIFOs.
    pub fn mp5(pipelines: usize) -> Self {
        SwitchConfig {
            pipelines,
            fifo_capacity: None,
            remap_period: 100,
            sharding: ShardingMode::Dynamic,
            phantoms: true,
            per_index_fifos: false,
            spray: SprayMode::RoundRobin,
            starvation_threshold: None,
            ecn_threshold: None,
            seed: 0,
            max_cycles: None,
            physical_pipelines: None,
            engine: EngineMode::Sequential,
            exec: ExecPath::Batch,
            record_detail: true,
        }
    }

    /// The ideal-MP5 upper bound (§4.3.3's baseline): no head-of-line
    /// blocking, LPT re-sharding.
    pub fn ideal(pipelines: usize) -> Self {
        SwitchConfig {
            sharding: ShardingMode::IdealPeriodic,
            per_index_fifos: true,
            ..Self::mp5(pipelines)
        }
    }

    /// The no-D4 ablation (§4.3.2): steering and sharding but no
    /// order enforcement.
    pub fn no_d4(pipelines: usize) -> Self {
        SwitchConfig {
            phantoms: false,
            ..Self::mp5(pipelines)
        }
    }

    /// The static-sharding ablation (§4.3.2).
    pub fn static_shard(pipelines: usize, seed: u64) -> Self {
        SwitchConfig {
            sharding: ShardingMode::Static,
            seed,
            ..Self::mp5(pipelines)
        }
    }

    /// The naive design: all state and all packets on pipeline 0.
    pub fn naive(pipelines: usize) -> Self {
        SwitchConfig {
            sharding: ShardingMode::Pinned,
            spray: SprayMode::SinglePipeline(0),
            ..Self::mp5(pipelines)
        }
    }

    /// Hardware-faithful FIFO bound (8 per lane, §4.2).
    pub fn with_hardware_fifos(mut self) -> Self {
        self.fifo_capacity = Some(8);
        self
    }

    /// Selects the cycle engine (builder style).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the work-phase implementation (builder style); see
    /// [`ExecPath`].
    pub fn with_exec(mut self, exec: ExecPath) -> Self {
        self.exec = exec;
        self
    }

    /// Toggles per-packet report artifacts (builder style); see
    /// [`SwitchConfig::record_detail`].
    pub fn with_record_detail(mut self, on: bool) -> Self {
        self.record_detail = on;
        self
    }

    /// Checks the configuration for structural errors.
    ///
    /// Called by `Mp5Switch::try_new` / `try_with_sink`; the panicking
    /// constructors (`new`, `with_sink`) unwrap its result. Notably,
    /// `physical_pipelines < pipelines` is now a hard error — earlier
    /// versions silently clamped it up to the logical count, which hid
    /// miswired [`crate::partition`] call sites.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pipelines == 0 {
            return Err(ConfigError::ZeroPipelines);
        }
        if let Some(phys) = self.physical_pipelines {
            if phys < self.pipelines {
                return Err(ConfigError::PhysicalPipelinesBelowLogical {
                    physical: phys,
                    logical: self.pipelines,
                });
            }
        }
        if self.engine == EngineMode::Parallel(0) {
            return Err(ConfigError::ZeroWorkers);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_knobs() {
        let mp5 = SwitchConfig::mp5(4);
        assert!(mp5.phantoms);
        assert_eq!(mp5.sharding, ShardingMode::Dynamic);
        assert_eq!(mp5.remap_period, 100);

        let ideal = SwitchConfig::ideal(4);
        assert!(ideal.per_index_fifos);
        assert_eq!(ideal.sharding, ShardingMode::IdealPeriodic);

        assert!(!SwitchConfig::no_d4(4).phantoms);
        assert_eq!(
            SwitchConfig::static_shard(4, 7).sharding,
            ShardingMode::Static
        );

        let naive = SwitchConfig::naive(4);
        assert_eq!(naive.spray, SprayMode::SinglePipeline(0));
        assert_eq!(naive.sharding, ShardingMode::Pinned);

        assert_eq!(mp5.with_hardware_fifos().fifo_capacity, Some(8));
    }

    #[test]
    fn validate_catches_structural_errors() {
        assert_eq!(SwitchConfig::mp5(4).validate(), Ok(()));

        let zero = SwitchConfig {
            pipelines: 0,
            ..SwitchConfig::mp5(1)
        };
        assert_eq!(zero.validate(), Err(ConfigError::ZeroPipelines));

        let shrunk = SwitchConfig {
            physical_pipelines: Some(2),
            ..SwitchConfig::mp5(4)
        };
        assert_eq!(
            shrunk.validate(),
            Err(ConfigError::PhysicalPipelinesBelowLogical {
                physical: 2,
                logical: 4
            })
        );
        // Equal or larger is fine (logical partition of a bigger chip).
        let ok = SwitchConfig {
            physical_pipelines: Some(8),
            ..SwitchConfig::mp5(4)
        };
        assert_eq!(ok.validate(), Ok(()));

        let none = SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(0));
        assert_eq!(none.validate(), Err(ConfigError::ZeroWorkers));
        let par = SwitchConfig::mp5(4).with_engine(EngineMode::Parallel(3));
        assert_eq!(par.validate(), Ok(()));
    }

    #[test]
    fn workers_for_clamps_to_pipelines() {
        assert_eq!(EngineMode::Sequential.workers_for(4), 0);
        assert_eq!(EngineMode::Parallel(8).workers_for(4), 4);
        assert_eq!(EngineMode::Parallel(2).workers_for(4), 2);
        assert!(matches!(EngineMode::parallel_auto(), EngineMode::Parallel(n) if n >= 1));
    }

    #[test]
    fn exec_path_defaults_to_batch_and_parses() {
        assert_eq!(SwitchConfig::mp5(4).exec, ExecPath::Batch);
        assert_eq!(
            SwitchConfig::mp5(4).with_exec(ExecPath::Scalar).exec,
            ExecPath::Scalar
        );
        assert_eq!("scalar".parse(), Ok(ExecPath::Scalar));
        assert_eq!("batch".parse(), Ok(ExecPath::Batch));
        assert_eq!("soa".parse(), Ok(ExecPath::Batch));
        assert!("vector".parse::<ExecPath>().is_err());
        assert_eq!(ExecPath::Scalar.to_string(), "scalar");
        assert_eq!(ExecPath::Batch.to_string(), "batch");
    }

    #[test]
    fn engine_mode_parses_cli_spellings() {
        assert_eq!("seq".parse(), Ok(EngineMode::Sequential));
        assert_eq!("sequential".parse(), Ok(EngineMode::Sequential));
        assert_eq!("par:3".parse(), Ok(EngineMode::Parallel(3)));
        assert!(matches!("par".parse(), Ok(EngineMode::Parallel(n)) if n >= 1));
        assert!("par:0".parse::<EngineMode>().is_err());
        assert!("par:x".parse::<EngineMode>().is_err());
        assert!("fast".parse::<EngineMode>().is_err());
    }
}
