//! Switch configuration.

/// How register state is distributed across pipelines (design principle
/// D2 and its ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingMode {
    /// Paper behaviour: indexes start round-robin across pipelines and
    /// the Figure 6 heuristic re-balances them every
    /// [`SwitchConfig::remap_period`] cycles.
    Dynamic,
    /// D2 ablation: indexes are sharded randomly at "compile time"
    /// (seeded) and never moved.
    Static,
    /// All state pinned to pipeline 0 (the naive design of §3.1 /
    /// challenge #1, and the destination for unshardable arrays).
    Pinned,
    /// Ideal upper bound (§4.3.3): re-sharding by longest-processing-
    /// time assignment over the measured counters every period.
    IdealPeriodic,
}

/// How arriving packets are assigned to pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprayMode {
    /// Uniformly spray arrivals round-robin over all pipelines (D1).
    RoundRobin,
    /// Send every packet to one pipeline (the naive design: throughput
    /// capped at `1/k` of line rate).
    SinglePipeline(usize),
}

/// Full configuration of an [`crate::Mp5Switch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Number of parallel pipelines `k` (paper default 4).
    pub pipelines: usize,
    /// Per-lane FIFO capacity; `None` = unbounded (the paper's
    /// "dynamically adapt FIFO sizes" mode used for sensitivity
    /// experiments). Paper hardware default: 8.
    pub fifo_capacity: Option<usize>,
    /// Cycles between runs of the sharding heuristic (paper: 100).
    pub remap_period: u64,
    /// State distribution policy.
    pub sharding: ShardingMode,
    /// Enable phantom packets (design principle D4). Disabling yields
    /// the no-D4 ablation, which violates C1.
    pub phantoms: bool,
    /// Ideal-MP5 option: one queue per register index (no head-of-line
    /// blocking, §3.5.2 limitation 2 removed).
    pub per_index_fifos: bool,
    /// Packet-to-pipeline assignment at ingress.
    pub spray: SprayMode,
    /// If set, a queued stateful packet older than this many cycles
    /// causes incoming stateless (tag-free) packets to be dropped in its
    /// favor (§3.4 "Handling starvation").
    pub starvation_threshold: Option<u64>,
    /// If set, mark a data packet's ECN bit when it joins a stateful
    /// stage FIFO whose occupancy exceeds this threshold (§3.4's
    /// backpressure suggestion). Marking never changes processing.
    pub ecn_threshold: Option<usize>,
    /// Seed for the Static sharding shuffle.
    pub seed: u64,
    /// Hard cap on simulated cycles (defense against livelock bugs);
    /// `None` = derived from the trace length.
    pub max_cycles: Option<u64>,
    /// Physical pipeline count governing the clock period (`64·k_phys`
    /// byte-times per cycle). Defaults to `pipelines`. Set by
    /// [`crate::partition`] when this switch is a *logical* MP5 using
    /// only a subset of the chip's pipelines (paper §3.1, footnote 1):
    /// the pipelines still run at the physical chip's rate `N·B/k_phys`.
    pub physical_pipelines: Option<usize>,
}

impl SwitchConfig {
    /// The paper's default MP5 configuration with `k` pipelines and
    /// adaptive (unbounded) FIFOs.
    pub fn mp5(pipelines: usize) -> Self {
        SwitchConfig {
            pipelines,
            fifo_capacity: None,
            remap_period: 100,
            sharding: ShardingMode::Dynamic,
            phantoms: true,
            per_index_fifos: false,
            spray: SprayMode::RoundRobin,
            starvation_threshold: None,
            ecn_threshold: None,
            seed: 0,
            max_cycles: None,
            physical_pipelines: None,
        }
    }

    /// The ideal-MP5 upper bound (§4.3.3's baseline): no head-of-line
    /// blocking, LPT re-sharding.
    pub fn ideal(pipelines: usize) -> Self {
        SwitchConfig {
            sharding: ShardingMode::IdealPeriodic,
            per_index_fifos: true,
            ..Self::mp5(pipelines)
        }
    }

    /// The no-D4 ablation (§4.3.2): steering and sharding but no
    /// order enforcement.
    pub fn no_d4(pipelines: usize) -> Self {
        SwitchConfig {
            phantoms: false,
            ..Self::mp5(pipelines)
        }
    }

    /// The static-sharding ablation (§4.3.2).
    pub fn static_shard(pipelines: usize, seed: u64) -> Self {
        SwitchConfig {
            sharding: ShardingMode::Static,
            seed,
            ..Self::mp5(pipelines)
        }
    }

    /// The naive design: all state and all packets on pipeline 0.
    pub fn naive(pipelines: usize) -> Self {
        SwitchConfig {
            sharding: ShardingMode::Pinned,
            spray: SprayMode::SinglePipeline(0),
            ..Self::mp5(pipelines)
        }
    }

    /// Hardware-faithful FIFO bound (8 per lane, §4.2).
    pub fn with_hardware_fifos(mut self) -> Self {
        self.fifo_capacity = Some(8);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_knobs() {
        let mp5 = SwitchConfig::mp5(4);
        assert!(mp5.phantoms);
        assert_eq!(mp5.sharding, ShardingMode::Dynamic);
        assert_eq!(mp5.remap_period, 100);

        let ideal = SwitchConfig::ideal(4);
        assert!(ideal.per_index_fifos);
        assert_eq!(ideal.sharding, ShardingMode::IdealPeriodic);

        assert!(!SwitchConfig::no_d4(4).phantoms);
        assert_eq!(
            SwitchConfig::static_shard(4, 7).sharding,
            ShardingMode::Static
        );

        let naive = SwitchConfig::naive(4);
        assert_eq!(naive.spray, SprayMode::SinglePipeline(0));
        assert_eq!(naive.sharding, ShardingMode::Pinned);

        assert_eq!(mp5.with_hardware_fifos().fifo_capacity, Some(8));
    }
}
