//! Run reports: everything a run of the switch produces.

use std::collections::BTreeMap;

use mp5_banzai::RunResult;
use mp5_types::{Cycle, PacketId, Time};

/// Packet-drop counters by cause (§3.4 "Handling packet drops").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Phantoms dropped on full FIFOs.
    pub phantom_fifo_full: u64,
    /// Data packets dropped because their phantom was missing.
    pub data_no_phantom: u64,
    /// Data packets dropped on full FIFOs (no-phantom modes).
    pub data_fifo_full: u64,
    /// Stateless packets dropped in favor of starving stateful packets.
    pub starvation: u64,
}

impl DropCounts {
    /// Total dropped *data* packets.
    pub fn total_data(&self) -> u64 {
        self.data_no_phantom + self.data_fifo_full + self.starvation
    }
}

/// Recovery accounting for a run with injected faults (`mp5-faults`).
///
/// The accounting invariant the switch maintains — and the chaos suite
/// asserts — is `injected == recovered + degraded`: every fired fault
/// is either fully absorbed by the recovery machinery or acknowledged
/// as permanent degradation (a dead pipeline, or a deliberately silent
/// phantom loss used as an auditor negative control).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults fired by the plan.
    pub injected: u64,
    /// Transient faults fully absorbed (stalls, recoverable phantom
    /// losses, forced FIFO pressure, grant delays, remap aborts).
    pub recovered: u64,
    /// Faults acknowledged as permanent degradation.
    pub degraded: u64,
    /// Cycles spent running with at least one dead pipeline.
    pub degraded_cycles: u64,
    /// Register indexes evacuated off dead pipelines via the D2 path.
    pub evacuated_indexes: u64,
    /// Phantoms lost to injected drops / forced overflow (recorded).
    pub phantoms_dropped: u64,
    /// Lost-phantom data packets recovered into FIFO order.
    pub phantoms_recovered: u64,
    /// Pipelines dead at end of run (ascending).
    pub dead_pipelines: Vec<u16>,
    /// Stage-cycles suppressed by injected stalls.
    pub stall_cycles: u64,
    /// Crossbar grants delayed by injected grant latency.
    pub delayed_grants: u64,
    /// Remap rounds aborted by injected control-plane failures.
    pub aborted_remaps: u64,
}

impl FaultReport {
    /// Does the accounting close? (`injected == recovered + degraded`.)
    pub fn accounted(&self) -> bool {
        self.injected == self.recovered + self.degraded
    }

    /// Whether any fault fired during the run.
    pub fn any(&self) -> bool {
        self.injected > 0
    }
}

/// Result of running a packet trace through an MP5 switch.
///
/// `PartialEq` compares every field — the equality the engine
/// equivalence suite relies on to assert the parallel engine is
/// bit-identical to the sequential one.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Functional-equivalence evidence (final registers, packet outputs,
    /// per-state access order) in the same shape the Banzai reference
    /// produces, so the two can be compared directly.
    pub result: RunResult,
    /// Packets offered to the switch.
    pub offered: u64,
    /// Packets processed to completion.
    pub completed: u64,
    /// Drops by cause.
    pub drops: DropCounts,
    /// Total simulated cycles until the switch drained.
    pub cycles: Cycle,
    /// Duration of the input trace in byte-times (last arrival + one
    /// slot).
    pub input_duration: Time,
    /// Completion sequence: `(packet, completion cycle)` in exit order —
    /// input for the reordering analysis.
    pub completions: Vec<(PacketId, Cycle)>,
    /// Highest per-stage FIFO occupancy observed anywhere (the paper
    /// reports 11/8/7/7 for the four real applications).
    pub max_queue_depth: usize,
    /// Packets steered across pipelines (off-diagonal crossbar routes).
    pub steered: u64,
    /// Phantom packets generated.
    pub phantoms_generated: u64,
    /// Pop cycles wasted on speculative-false phantoms.
    pub wasted_cycles: u64,
    /// State migrations performed by the sharding runtime.
    pub remap_moves: u64,
    /// Packets that left the switch with the ECN congestion mark set.
    pub ecn_marked: u64,
    /// Byte-times per pipeline cycle of the switch that produced this
    /// report (`64·k`).
    pub cycle_len: u64,
    /// Per-`(pipeline, stage)` drop counts for bounded-FIFO runs:
    /// every drop in [`DropCounts`] that happened *at* a stage FIFO is
    /// also attributed to its location here (phantom overflow, cascaded
    /// no-phantom drops, direct data overflow, starvation yields).
    pub stage_drops: BTreeMap<(u16, u16), u64>,
    /// Fault-injection accounting (all-zero under the default
    /// `NoFaults` injector).
    pub fault: FaultReport,
}

impl RunReport {
    /// Packet processing throughput normalized to the input packet rate
    /// (the paper's §4.3.1 metric).
    ///
    /// Computed as the ratio of the input stream's duration to the time
    /// the switch actually took to process it (capped at 1.0): a switch
    /// that keeps up processes the trace in the trace's own duration;
    /// one that serializes on a hot state takes proportionally longer.
    /// Dropped packets (bounded-FIFO runs) additionally scale the result
    /// by the delivered fraction.
    pub fn normalized_throughput(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        let drain = (self.cycles as f64) * self.cycle_len as f64;
        let input = self.input_duration.max(1) as f64;
        let rate = (input / drain.max(input)).min(1.0);
        rate * self.delivered_fraction()
    }

    /// Fraction of offered packets that completed.
    pub fn delivered_fraction(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Sets the byte-times-per-cycle used by the throughput metric
    /// (filled by the switch that produces the report).
    pub fn set_cycle_len(&mut self, len: u64) {
        self.cycle_len = len;
    }

    /// An empty report (all counters zero). Switch models fill it in.
    pub fn new() -> Self {
        RunReport {
            result: RunResult::default(),
            offered: 0,
            completed: 0,
            drops: DropCounts::default(),
            cycles: 0,
            input_duration: 0,
            completions: Vec::new(),
            max_queue_depth: 0,
            steered: 0,
            phantoms_generated: 0,
            wasted_cycles: 0,
            remap_moves: 0,
            ecn_marked: 0,
            cycle_len: 64,
            stage_drops: BTreeMap::new(),
            fault: FaultReport::default(),
        }
    }

    /// Attribute one drop to a stage location (bounded-FIFO accounting).
    pub fn count_stage_drop(&mut self, pipeline: u16, stage: u16) {
        *self.stage_drops.entry((pipeline, stage)).or_insert(0) += 1;
    }

    /// Total drops attributed to stage locations.
    pub fn stage_drop_total(&self) -> u64 {
        self.stage_drops.values().sum()
    }
}

impl Default for RunReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_of_keeping_up_is_one() {
        let mut r = RunReport::new();
        r.offered = 100;
        r.completed = 100;
        r.input_duration = 6400;
        r.set_cycle_len(64);
        r.cycles = 100; // drained exactly in the input duration
        assert!((r.normalized_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_halves_when_drain_takes_double() {
        let mut r = RunReport::new();
        r.offered = 100;
        r.completed = 100;
        r.input_duration = 6400;
        r.set_cycle_len(64);
        r.cycles = 200;
        assert!((r.normalized_throughput() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fault_report_accounting_closes() {
        let mut f = FaultReport::default();
        assert!(f.accounted());
        assert!(!f.any());
        f.injected = 3;
        f.recovered = 2;
        assert!(!f.accounted());
        f.degraded = 1;
        assert!(f.accounted());
        assert!(f.any());
    }

    #[test]
    fn stage_drops_accumulate_per_location() {
        let mut r = RunReport::new();
        r.count_stage_drop(1, 2);
        r.count_stage_drop(1, 2);
        r.count_stage_drop(0, 3);
        assert_eq!(r.stage_drops.get(&(1, 2)), Some(&2));
        assert_eq!(r.stage_drops.get(&(0, 3)), Some(&1));
        assert_eq!(r.stage_drop_total(), 3);
    }

    #[test]
    fn drops_scale_throughput() {
        let mut r = RunReport::new();
        r.offered = 100;
        r.completed = 50;
        r.input_duration = 6400;
        r.set_cycle_len(64);
        r.cycles = 100;
        assert!((r.normalized_throughput() - 0.5).abs() < 1e-9);
        assert!((r.delivered_fraction() - 0.5).abs() < 1e-9);
    }
}
