//! Multiple independent logical MP5 switches on one chip (paper §3.1,
//! footnote 1).
//!
//! "More generally, MP5 programs a subset *m* of *k* pipelines with the
//! same program ... This allows the programmers to program the
//! remaining pipelines with some other packet processing programs, thus
//! creating multiple independent logical MP5, each with varying number
//! of parallel pipelines."
//!
//! A [`PartitionedSwitch`] carves the chip's `k` physical pipelines into
//! disjoint logical switches, each running its own compiled program over
//! its own slice of input ports. The pipelines of every partition still
//! clock at the *physical* chip's rate (`N·B/k`), so a logical MP5 with
//! `m` pipelines offers `m/k` of the chip's aggregate capacity — exactly
//! the trade the footnote describes.

use mp5_compiler::CompiledProgram;
use mp5_types::{Packet, PortId};

use crate::config::SwitchConfig;
use crate::report::RunReport;
use crate::switch::Mp5Switch;

/// One logical MP5: a program, the pipelines it owns, and the ports it
/// serves.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Human-readable label (reports).
    pub name: String,
    /// Compiled program for this logical switch.
    pub program: CompiledProgram,
    /// Number of physical pipelines assigned.
    pub pipelines: usize,
    /// Ports (inclusive range) routed to this logical switch.
    pub ports: std::ops::Range<u16>,
}

/// A chip partitioned into independent logical MP5 switches.
#[derive(Debug)]
pub struct PartitionedSwitch {
    physical_pipelines: usize,
    partitions: Vec<Partition>,
}

/// The per-partition outcome of a partitioned run.
#[derive(Debug)]
pub struct PartitionReport {
    /// Partition label.
    pub name: String,
    /// The logical switch's full run report.
    pub report: RunReport,
}

impl PartitionedSwitch {
    /// Creates a partitioned chip. Pipeline assignments must not exceed
    /// the physical count, and port ranges must be disjoint.
    pub fn new(physical_pipelines: usize, partitions: Vec<Partition>) -> Self {
        let used: usize = partitions.iter().map(|p| p.pipelines).sum();
        assert!(
            used <= physical_pipelines,
            "partitions use {used} pipelines, chip has {physical_pipelines}"
        );
        for (i, a) in partitions.iter().enumerate() {
            assert!(a.pipelines >= 1, "partition {} has no pipelines", a.name);
            for b in &partitions[i + 1..] {
                assert!(
                    a.ports.end <= b.ports.start || b.ports.end <= a.ports.start,
                    "port ranges of '{}' and '{}' overlap",
                    a.name,
                    b.name
                );
            }
        }
        PartitionedSwitch {
            physical_pipelines,
            partitions,
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True if no partitions were configured.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Routes each packet to the logical switch owning its port and runs
    /// every partition to completion (concurrently — the partitions are
    /// physically independent). Packets on ports owned by no partition
    /// are dropped at ingress (counted nowhere, like a disabled port).
    pub fn run(self, packets: Vec<Packet>) -> Vec<PartitionReport> {
        let mut per: Vec<Vec<Packet>> = vec![Vec::new(); self.partitions.len()];
        for pkt in packets {
            if let Some(i) = self
                .partitions
                .iter()
                .position(|p| p.ports.contains(&pkt.port.0))
            {
                per[i].push(remap_port(pkt, self.partitions[i].ports.start));
            }
        }
        let phys = self.physical_pipelines;
        let mut handles = Vec::new();
        for (part, trace) in self.partitions.into_iter().zip(per) {
            handles.push(std::thread::spawn(move || {
                let cfg = SwitchConfig {
                    physical_pipelines: Some(phys),
                    ..SwitchConfig::mp5(part.pipelines)
                };
                let report = Mp5Switch::new(part.program, cfg).run(trace);
                PartitionReport {
                    name: part.name,
                    report,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread panicked"))
            .collect()
    }
}

/// Rebases a packet's port into the partition's local port space (so
/// entry-order tie-breaking stays well-defined inside the partition).
fn remap_port(mut pkt: Packet, base: u16) -> Packet {
    pkt.port = PortId(pkt.port.0 - base);
    pkt
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_banzai::BanzaiSwitch;
    use mp5_compiler::{compile, Target};
    use mp5_traffic::TraceBuilder;

    fn counter_table(size: u32) -> CompiledProgram {
        compile(
            &format!(
                "struct Packet {{ int h; int out; }};
                 int t[{size}] = {{0}};
                 void func(struct Packet p) {{
                     t[p.h % {size}] = t[p.h % {size}] + 1;
                     p.out = t[p.h % {size}];
                 }}"
            ),
            &Target::default(),
        )
        .unwrap()
    }

    #[test]
    fn partitions_are_independent_and_equivalent() {
        let prog_a = counter_table(64);
        let prog_b = counter_table(16);
        let nf = prog_a.num_fields();
        // 64 ports: first 32 -> partition A (2 pipelines), last 32 -> B.
        let trace = TraceBuilder::new(6000, 5).build(nf, |rng, _, f| {
            f[0] = rand::Rng::gen_range(rng, 0..500);
        });
        let (ta, tb): (Vec<_>, Vec<_>) = trace.iter().cloned().partition(|p| p.port.0 < 32);

        let sw = PartitionedSwitch::new(
            4,
            vec![
                Partition {
                    name: "A".into(),
                    program: prog_a.clone(),
                    pipelines: 2,
                    ports: 0..32,
                },
                Partition {
                    name: "B".into(),
                    program: prog_b.clone(),
                    pipelines: 2,
                    ports: 32..64,
                },
            ],
        );
        let reports = sw.run(trace);
        assert_eq!(reports.len(), 2);

        // Each logical switch matches its own single-pipeline reference
        // over its own packets.
        let ref_a = BanzaiSwitch::new(prog_a)
            .run(ta.into_iter().map(|p| super::remap_port(p, 0)).collect());
        let ref_b = BanzaiSwitch::new(prog_b)
            .run(tb.into_iter().map(|p| super::remap_port(p, 32)).collect());
        assert!(
            reports[0].report.result.equivalent_to(&ref_a),
            "partition A"
        );
        assert!(
            reports[1].report.result.equivalent_to(&ref_b),
            "partition B"
        );
    }

    #[test]
    fn logical_switch_clocks_at_physical_rate() {
        // A 2-pipeline partition of a 4-pipeline chip uses the chip's
        // 64·4 byte-time cycle, not 64·2.
        let prog = counter_table(64);
        let cfg = SwitchConfig {
            physical_pipelines: Some(4),
            ..SwitchConfig::mp5(2)
        };
        let nf = prog.num_fields();
        let rep = Mp5Switch::new(prog, cfg).run(TraceBuilder::new(100, 1).build(nf, |_, _, _| {}));
        assert_eq!(rep.cycle_len, 64 * 4);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_ports_rejected() {
        let prog = counter_table(4);
        PartitionedSwitch::new(
            4,
            vec![
                Partition {
                    name: "A".into(),
                    program: prog.clone(),
                    pipelines: 2,
                    ports: 0..40,
                },
                Partition {
                    name: "B".into(),
                    program: prog,
                    pipelines: 2,
                    ports: 32..64,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "pipelines")]
    fn oversubscribed_pipelines_rejected() {
        let prog = counter_table(4);
        PartitionedSwitch::new(
            2,
            vec![Partition {
                name: "A".into(),
                program: prog,
                pipelines: 3,
                ports: 0..64,
            }],
        );
    }
}
