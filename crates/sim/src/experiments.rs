//! One runner per paper table/figure.
//!
//! Every runner returns structured rows; the `mp5-bench` targets print
//! them in the paper's shape and EXPERIMENTS.md records the comparison.
//! Row structs are `serde`-serializable so runs can be archived as
//! JSON/CSV.
//!
//! Knobs (environment variables, read once per call):
//! * `MP5_EXP_PACKETS` — packets per run (default 20 000),
//! * `MP5_EXP_SEEDS` — independent input streams per data point
//!   (default 5; the paper uses 10).

use serde::Serialize;

use mp5_banzai::BanzaiSwitch;
use mp5_baselines::{RecircConfig, RecircSwitch};
use mp5_core::{Mp5Switch, SwitchConfig};
use mp5_traffic::{AccessPattern, FlowTraceBuilder};
use mp5_types::Packet;

use crate::metrics::c1_violation_fraction;
use crate::parallel_map;
use crate::synth::{synthetic_compiled, synthetic_trace, SynthConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Packets per run (env `MP5_EXP_PACKETS`).
pub fn packets_per_run() -> usize {
    env_usize("MP5_EXP_PACKETS", 20_000)
}

/// Independent input streams per data point (env `MP5_EXP_SEEDS`).
pub fn seeds_per_point() -> usize {
    env_usize("MP5_EXP_SEEDS", 5)
}

/// Throughput of one synthetic run under a switch configuration.
fn run_synth_once(cfg: SynthConfig, sw: SwitchConfig) -> f64 {
    let prog =
        synthetic_compiled(cfg.stateful_stages, cfg.reg_size).expect("synthetic program compiles");
    let trace = synthetic_trace(&prog, &cfg);
    Mp5Switch::new(prog, sw).run(trace).normalized_throughput()
}

/// Mean throughput across seeds, runs in parallel.
fn run_synth_mean(cfg: SynthConfig, sw: SwitchConfig, seeds: usize) -> f64 {
    let jobs: Vec<_> = (0..seeds)
        .map(|s| {
            let mut c = cfg;
            c.seed = 1000 + s as u64;
            let sw = sw.clone();
            move || run_synth_once(c, sw)
        })
        .collect();
    let v = parallel_map(jobs);
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// One sensitivity data point: MP5 and ideal under both access patterns
/// (the four series of each Figure 7 panel).
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// The swept parameter value.
    pub x: f64,
    /// MP5, uniform access pattern.
    pub mp5_uniform: f64,
    /// Ideal MP5, uniform.
    pub ideal_uniform: f64,
    /// MP5, skewed (95 %→30 %).
    pub mp5_skewed: f64,
    /// Ideal MP5, skewed.
    pub ideal_skewed: f64,
}

fn fig7_point(x: f64, base: SynthConfig, seeds: usize) -> Fig7Row {
    let uni = SynthConfig {
        pattern: AccessPattern::Uniform,
        ..base
    };
    let skew = SynthConfig {
        pattern: AccessPattern::paper_skewed(),
        ..base
    };
    Fig7Row {
        x,
        mp5_uniform: run_synth_mean(uni, SwitchConfig::mp5(base.pipelines), seeds),
        ideal_uniform: run_synth_mean(uni, SwitchConfig::ideal(base.pipelines), seeds),
        mp5_skewed: run_synth_mean(skew, SwitchConfig::mp5(base.pipelines), seeds),
        ideal_skewed: run_synth_mean(skew, SwitchConfig::ideal(base.pipelines), seeds),
    }
}

/// Figure 7a: throughput vs number of pipelines (1…16).
pub fn fig7a() -> Vec<Fig7Row> {
    let seeds = seeds_per_point();
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&k| {
            let base = SynthConfig {
                pipelines: k,
                packets: packets_per_run(),
                ..Default::default()
            };
            fig7_point(k as f64, base, seeds)
        })
        .collect()
}

/// Figure 7b: throughput vs number of stateful stages (0…10).
pub fn fig7b() -> Vec<Fig7Row> {
    let seeds = seeds_per_point();
    [0usize, 2, 4, 6, 8, 10]
        .iter()
        .map(|&m| {
            let base = SynthConfig {
                stateful_stages: m,
                packets: packets_per_run(),
                ..Default::default()
            };
            fig7_point(m as f64, base, seeds)
        })
        .collect()
}

/// Figure 7c: throughput vs register array size (1…4096).
pub fn fig7c() -> Vec<Fig7Row> {
    let seeds = seeds_per_point();
    [1u32, 4, 16, 64, 256, 512, 1024, 4096]
        .iter()
        .map(|&r| {
            let base = SynthConfig {
                reg_size: r,
                packets: packets_per_run(),
                ..Default::default()
            };
            fig7_point(r as f64, base, seeds)
        })
        .collect()
}

/// Figure 7d: throughput vs packet size (64…1500 B).
pub fn fig7d() -> Vec<Fig7Row> {
    let seeds = seeds_per_point();
    [64u32, 128, 256, 512, 1024, 1500]
        .iter()
        .map(|&p| {
            let base = SynthConfig {
                packet_size: p,
                packets: packets_per_run(),
                ..Default::default()
            };
            fig7_point(p as f64, base, seeds)
        })
        .collect()
}

/// One D2-microbenchmark stream: dynamic- vs static-sharding throughput
/// ratio (§4.3.2 reports 1.1–3.3× skewed, 1–1.5× uniform).
#[derive(Debug, Clone, Serialize)]
pub struct D2Row {
    /// Stream seed.
    pub seed: u64,
    /// dynamic/static throughput ratio, uniform pattern.
    pub ratio_uniform: f64,
    /// dynamic/static throughput ratio, skewed pattern.
    pub ratio_skewed: f64,
}

/// §4.3.2 D2 microbenchmark.
pub fn micro_d2() -> Vec<D2Row> {
    let seeds = seeds_per_point().max(5);
    let packets = packets_per_run();
    let jobs: Vec<_> = (0..seeds)
        .map(|s| {
            move || {
                let seed = 2000 + s as u64;
                let ratio = |pattern: AccessPattern| {
                    let cfg = SynthConfig {
                        pattern,
                        packets,
                        seed,
                        ..Default::default()
                    };
                    let dynamic = run_synth_once(cfg, SwitchConfig::mp5(4));
                    let stat = run_synth_once(cfg, SwitchConfig::static_shard(4, seed ^ 0xABCD));
                    dynamic / stat.max(1e-9)
                };
                D2Row {
                    seed,
                    ratio_uniform: ratio(AccessPattern::Uniform),
                    ratio_skewed: ratio(AccessPattern::paper_skewed()),
                }
            }
        })
        .collect();
    parallel_map(jobs)
}

/// One D4-microbenchmark stream: C1 violation fractions (§4.3.2
/// reports 0 for MP5, 14–26 % without D4, 18–31 % with recirculation).
#[derive(Debug, Clone, Serialize)]
pub struct D4Row {
    /// Stream seed.
    pub seed: u64,
    /// MP5 (with D4) violation fraction — must be 0.
    pub mp5: f64,
    /// Without D4.
    pub no_d4: f64,
    /// Current-generation recirculation switch.
    pub recirc: f64,
}

/// §4.3.2 D4 microbenchmark.
pub fn micro_d4() -> Vec<D4Row> {
    let seeds = seeds_per_point().max(5);
    let packets = packets_per_run();
    let jobs: Vec<_> = (0..seeds)
        .map(|s| {
            move || {
                let seed = 3000 + s as u64;
                let cfg = SynthConfig {
                    pattern: AccessPattern::paper_skewed(),
                    packets,
                    seed,
                    ..Default::default()
                };
                let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
                let trace = synthetic_trace(&prog, &cfg);
                let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
                let mp5 = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
                let nod4 = Mp5Switch::new(prog.clone(), SwitchConfig::no_d4(4)).run(trace.clone());
                let rec = RecircSwitch::new(prog, RecircConfig::new(4)).run(trace);
                D4Row {
                    seed,
                    mp5: c1_violation_fraction(&reference.access_log, &mp5.result.access_log),
                    no_d4: c1_violation_fraction(&reference.access_log, &nod4.result.access_log),
                    recirc: c1_violation_fraction(
                        &reference.access_log,
                        &rec.report.result.access_log,
                    ),
                }
            }
        })
        .collect();
    parallel_map(jobs)
}

/// One D3-microbenchmark stream: throughput of MP5, the recirculation
/// switch, and the naive design (§4.3.2: recirculation loses 31–77 %
/// vs MP5, and can be worse than naive when recircs/packet exceed `k`).
#[derive(Debug, Clone, Serialize)]
pub struct D3Row {
    /// Stream seed.
    pub seed: u64,
    /// MP5 throughput.
    pub mp5: f64,
    /// Recirculation throughput.
    pub recirc: f64,
    /// Naive (single active pipeline) throughput.
    pub naive: f64,
    /// Average recirculations per packet.
    pub recircs_per_packet: f64,
}

/// §4.3.2 D3 microbenchmark.
pub fn micro_d3() -> Vec<D3Row> {
    let seeds = seeds_per_point().max(5);
    let packets = packets_per_run();
    let jobs: Vec<_> = (0..seeds)
        .map(|s| {
            move || {
                let seed = 4000 + s as u64;
                let cfg = SynthConfig {
                    pattern: AccessPattern::paper_skewed(),
                    packets,
                    seed,
                    ..Default::default()
                };
                let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
                let trace = synthetic_trace(&prog, &cfg);
                let mp5 = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(4)).run(trace.clone());
                let naive = Mp5Switch::new(prog.clone(), SwitchConfig::naive(4)).run(trace.clone());
                let rec = RecircSwitch::new(prog, RecircConfig::new(4)).run(trace);
                D3Row {
                    seed,
                    mp5: mp5.normalized_throughput(),
                    recirc: rec.report.normalized_throughput(),
                    naive: naive.normalized_throughput(),
                    recircs_per_packet: rec.recircs_per_packet(),
                }
            }
        })
        .collect();
    parallel_map(jobs)
}

/// One Figure 8 data point: a real application at `k` pipelines.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Application name.
    pub app: String,
    /// Pipelines.
    pub pipelines: usize,
    /// Normalized throughput (paper: line rate ⇒ 1.0 for all apps).
    pub throughput: f64,
    /// Maximum packets queued in any pipeline stage (paper: 11/8/7/7).
    pub max_queue_depth: usize,
    /// Whether this point is within the FPGA prototype's range (≤ 4
    /// pipelines / 4 ports in the paper).
    pub fpga_range: bool,
    /// Functional equivalence against the Banzai reference held.
    pub equivalent: bool,
}

/// Builds the realistic §4.4 trace for an application: Web-search
/// flows, bimodal packet sizes, line-rate input.
pub fn app_trace(
    app: &mp5_apps::AppSpec,
    packets: usize,
    seed: u64,
) -> (mp5_compiler::CompiledProgram, Vec<Packet>) {
    let prog = app.compile().expect("bundled app compiles");
    let nf = prog.num_fields();
    let fill = app.fill;
    let (mut trace, _flows) = FlowTraceBuilder::new(packets, seed).build(nf, |rng, key, fields| {
        fill(&prog, key, rng, fields);
    });
    // Apps that consume an arrival timestamp get the real one.
    if let Some(id) = prog.field("arr_ts") {
        for p in &mut trace {
            p.fields[id.index()] = p.arrival as i64;
        }
    }
    (prog, trace)
}

/// Figure 8: real-application throughput against pipeline count.
pub fn fig8(apps: &[mp5_apps::AppSpec]) -> Vec<Fig8Row> {
    let packets = packets_per_run();
    let seeds = seeds_per_point();
    let ks = [1usize, 2, 4, 8, 16];
    let mut jobs: Vec<Box<dyn FnOnce() -> Fig8Row + Send>> = Vec::new();
    for app in apps {
        let app = *app;
        for &k in &ks {
            jobs.push(Box::new(move || {
                let mut tp = 0.0;
                let mut max_q = 0usize;
                let mut equivalent = true;
                for s in 0..seeds {
                    let (prog, trace) = app_trace(&app, packets, 5000 + s as u64);
                    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
                    let rep = Mp5Switch::new(prog, SwitchConfig::mp5(k)).run(trace);
                    tp += rep.normalized_throughput();
                    max_q = max_q.max(rep.max_queue_depth);
                    equivalent &= rep.result.equivalent_to(&reference);
                }
                Fig8Row {
                    app: app.name.to_string(),
                    pipelines: k,
                    throughput: tp / seeds.max(1) as f64,
                    max_queue_depth: max_q,
                    fpga_range: k <= 4,
                    equivalent,
                }
            }));
        }
    }
    parallel_map(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_env() -> (usize, usize) {
        // Tests run with few packets/seeds for speed.
        std::env::set_var("MP5_EXP_PACKETS", "4000");
        std::env::set_var("MP5_EXP_SEEDS", "2");
        (packets_per_run(), seeds_per_point())
    }

    #[test]
    fn fig7a_throughput_decreases_with_pipelines() {
        small_env();
        let rows = fig7a();
        assert_eq!(rows.len(), 5);
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(
            first.mp5_uniform > last.mp5_uniform,
            "more pipelines → more contention → lower normalized throughput: {} vs {}",
            first.mp5_uniform,
            last.mp5_uniform
        );
        // MP5 close to ideal everywhere (§4.3.3).
        for r in &rows {
            assert!(r.ideal_uniform >= r.mp5_uniform - 0.08, "{r:?}");
            assert!(r.ideal_skewed >= r.mp5_skewed - 0.08, "{r:?}");
        }
    }

    #[test]
    fn fig7c_throughput_increases_with_register_size() {
        small_env();
        let rows = fig7c();
        let tiny = &rows[0]; // size 1: every packet hits one state
        let big = rows.last().unwrap(); // 4096
        assert!(
            big.mp5_uniform > tiny.mp5_uniform * 1.5,
            "large arrays shard better: {} vs {}",
            big.mp5_uniform,
            tiny.mp5_uniform
        );
    }

    #[test]
    fn fig7d_line_rate_from_128_bytes() {
        small_env();
        let rows = fig7d();
        let at_128 = rows.iter().find(|r| r.x == 128.0).unwrap();
        assert!(
            at_128.mp5_uniform > 0.9,
            "paper: line rate with packets as small as 128 B, got {}",
            at_128.mp5_uniform
        );
        let at_64 = rows.iter().find(|r| r.x == 64.0).unwrap();
        assert!(at_64.mp5_uniform < at_128.mp5_uniform);
    }

    #[test]
    fn micro_d4_mp5_is_exactly_zero() {
        small_env();
        for row in micro_d4() {
            assert_eq!(row.mp5, 0.0, "MP5 must never violate C1: {row:?}");
            assert!(row.no_d4 > 0.0, "no-D4 must violate: {row:?}");
            assert!(row.recirc > 0.0, "recirculation must violate: {row:?}");
        }
    }

    #[test]
    fn micro_d3_recirc_slower_than_mp5() {
        small_env();
        for row in micro_d3() {
            assert!(
                row.recirc < row.mp5,
                "recirculation must cost throughput: {row:?}"
            );
            assert!(row.recircs_per_packet > 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// Ablations of MP5's design choices (beyond the paper's figures)
// ---------------------------------------------------------------------

/// One FIFO-capacity ablation point: how deep must the per-lane FIFOs
/// be before line-rate workloads stop dropping? (§4.2 sets 8 entries
/// per FIFO, "sufficient to avoid tail drops based on observations in
/// §4.4".)
#[derive(Debug, Clone, Serialize)]
pub struct FifoAblationRow {
    /// Per-lane FIFO capacity.
    pub capacity: usize,
    /// Fraction of offered packets delivered (real app, §4.4 traffic).
    pub delivered_app: f64,
    /// Fraction delivered on the worst-case 64 B synthetic workload.
    pub delivered_synth: f64,
}

/// FIFO capacity sweep.
pub fn ablation_fifo() -> Vec<FifoAblationRow> {
    let packets = packets_per_run();
    let jobs: Vec<_> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|cap| {
            move || {
                let mut sw = SwitchConfig::mp5(4);
                sw.fifo_capacity = Some(cap);
                // Real application with realistic traffic.
                let (prog, trace) = app_trace(&mp5_apps::FLOWLET, packets, 42);
                let app = Mp5Switch::new(prog, sw.clone()).run(trace);
                // Worst-case synthetic at line rate.
                let cfg = SynthConfig {
                    packets,
                    seed: 42,
                    ..Default::default()
                };
                let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
                let trace = synthetic_trace(&prog, &cfg);
                let synth = Mp5Switch::new(prog, sw).run(trace);
                FifoAblationRow {
                    capacity: cap,
                    delivered_app: app.delivered_fraction(),
                    delivered_synth: synth.delivered_fraction(),
                }
            }
        })
        .collect();
    parallel_map(jobs)
}

/// One remap-period ablation point (§3.4 triggers the heuristic "every
/// few 100s of clock cycles"; the evaluation uses 100).
#[derive(Debug, Clone, Serialize)]
pub struct RemapAblationRow {
    /// Cycles between remap runs.
    pub period: u64,
    /// Throughput on skewed traffic.
    pub throughput: f64,
    /// State migrations performed.
    pub moves: u64,
}

/// Remap period sweep under skewed traffic.
pub fn ablation_remap() -> Vec<RemapAblationRow> {
    let packets = packets_per_run();
    let jobs: Vec<_> = [25u64, 50, 100, 200, 400, 800, 100_000_000]
        .into_iter()
        .map(|period| {
            move || {
                let cfg = SynthConfig {
                    pattern: mp5_traffic::AccessPattern::paper_skewed(),
                    packets,
                    seed: 9,
                    ..Default::default()
                };
                let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
                let trace = synthetic_trace(&prog, &cfg);
                let mut sw = SwitchConfig::mp5(4);
                sw.remap_period = period;
                let rep = Mp5Switch::new(prog, sw).run(trace);
                RemapAblationRow {
                    period,
                    throughput: rep.normalized_throughput(),
                    moves: rep.remap_moves,
                }
            }
        })
        .collect();
    parallel_map(jobs)
}

/// One flow-order-enforcement ablation point: the §3.4 dummy-state
/// mechanism trades throughput for zero intra-flow reordering.
#[derive(Debug, Clone, Serialize)]
pub struct FlowOrderRow {
    /// Pipelines.
    pub pipelines: usize,
    /// Without enforcement: throughput.
    pub plain_throughput: f64,
    /// Without enforcement: fraction of multi-packet flows reordered.
    pub plain_reordered: f64,
    /// With enforcement: throughput.
    pub ordered_throughput: f64,
    /// With enforcement: fraction reordered (must be 0).
    pub ordered_reordered: f64,
}

/// Flow-order enforcement cost/benefit on a NAT-like program where half
/// the packets are stateless.
pub fn ablation_flow_order() -> Vec<FlowOrderRow> {
    use mp5_compiler::{compile_with_options, CompileOptions, FlowOrderSpec};

    const NATISH: &str = "
        struct Packet {
            int src_ip; int dst_ip; int src_port; int dst_port; int proto;
            int is_syn;
            int nat_port;
        };
        int bindings[8] = {0};
        void func(struct Packet p) {
            int idx = hash3(hash2(p.src_ip, p.dst_ip),
                            hash2(p.src_port, p.dst_port), p.proto) % 8;
            if (p.is_syn == 1) {
                bindings[idx] = p.src_port + 10000;
                p.nat_port = bindings[idx];
            } else {
                p.nat_port = 0;
            }
        }";

    let packets = packets_per_run();
    let jobs: Vec<_> = [2usize, 4, 8]
        .into_iter()
        .map(|k| {
            move || {
                let plain =
                    mp5_compiler::compile(NATISH, &mp5_compiler::Target::default()).unwrap();
                let ordered = compile_with_options(
                    NATISH,
                    &mp5_compiler::Target::default(),
                    &CompileOptions {
                        enforce_flow_order: Some(FlowOrderSpec::default()),
                        ..Default::default()
                    },
                )
                .unwrap();
                let run = |prog: mp5_compiler::CompiledProgram| {
                    let trace = mp5_traffic::TraceBuilder::new(packets, 77).build(
                        prog.num_fields(),
                        |rng, _, f| {
                            let flow = rand::Rng::gen_range(rng, 0..32i64);
                            f[0] = flow;
                            f[1] = 99;
                            f[2] = 1000 + flow;
                            f[3] = 80;
                            f[4] = 6;
                            f[5] = i64::from(rand::Rng::gen_bool(rng, 0.5));
                        },
                    );
                    let flows: std::collections::HashMap<_, _> =
                        trace.iter().map(|p| (p.id, p.fields[0])).collect();
                    let arrival: Vec<_> = trace.iter().map(|p| p.id).collect();
                    let rep = Mp5Switch::new(prog, SwitchConfig::mp5(k)).run(trace);
                    let completion: Vec<_> = rep.completions.iter().map(|&(p, _)| p).collect();
                    (
                        rep.normalized_throughput(),
                        crate::metrics::reordered_flow_fraction(&flows, &arrival, &completion),
                    )
                };
                let (pt, pr) = run(plain);
                let (ot, or) = run(ordered);
                FlowOrderRow {
                    pipelines: k,
                    plain_throughput: pt,
                    plain_reordered: pr,
                    ordered_throughput: ot,
                    ordered_reordered: or,
                }
            }
        })
        .collect();
    parallel_map(jobs)
}

/// One chiplet-extension data point (§3.5.3, the paper's future work):
/// a monolithic 8-pipeline MP5 vs. two 4-pipeline chiplets with no
/// inter-chiplet state access (ports and state split per chiplet).
#[derive(Debug, Clone, Serialize)]
pub struct ChipletRow {
    /// Application.
    pub app: String,
    /// "monolithic-8" or "chiplet-2x4".
    pub mode: String,
    /// Normalized throughput (offered-weighted across chiplets).
    pub throughput: f64,
    /// Per-packet outputs identical to the logical single pipeline over
    /// the *whole* switch. Monolithic MP5 guarantees this; chiplets
    /// cannot when state is global or hash-shared across chiplets —
    /// exactly why the paper leaves inter-chiplet MP5 as future work.
    pub globally_equivalent: bool,
}

/// §3.5.3 chiplet exploration: what splitting the pipelines across two
/// chiplets (each a self-contained MP5) does to correctness and
/// throughput.
pub fn ext_chiplet() -> Vec<ChipletRow> {
    use mp5_core::{Partition, PartitionedSwitch};

    let packets = packets_per_run();
    let mut rows = Vec::new();
    for app in [
        &mp5_apps::SEQUENCER,
        &mp5_apps::FLOWLET,
        &mp5_apps::DDOS_COUNTER,
    ] {
        let (prog, trace) = app_trace(app, packets, 31);
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());

        // Monolithic 8-pipeline MP5.
        let mono = Mp5Switch::new(prog.clone(), SwitchConfig::mp5(8)).run(trace.clone());
        rows.push(ChipletRow {
            app: app.name.to_string(),
            mode: "monolithic-8".into(),
            throughput: mono.normalized_throughput(),
            globally_equivalent: mono.result.equivalent_to(&reference),
        });

        // Two 4-pipeline chiplets: ports 0-31 and 32-63.
        let chip = PartitionedSwitch::new(
            8,
            vec![
                Partition {
                    name: "chiplet0".into(),
                    program: prog.clone(),
                    pipelines: 4,
                    ports: 0..32,
                },
                Partition {
                    name: "chiplet1".into(),
                    program: prog.clone(),
                    pipelines: 4,
                    ports: 32..64,
                },
            ],
        );
        let reports = chip.run(trace);
        let offered: u64 = reports.iter().map(|r| r.report.offered).sum();
        let tput = reports
            .iter()
            .map(|r| r.report.normalized_throughput() * r.report.offered as f64)
            .sum::<f64>()
            / offered.max(1) as f64;
        // Global packet-state equivalence: every packet's outputs match
        // the whole-switch single-pipeline run.
        let globally_equivalent = reports.iter().all(|r| {
            r.report
                .result
                .outputs
                .iter()
                .all(|(id, out)| reference.outputs.get(id) == Some(out))
        });
        rows.push(ChipletRow {
            app: app.name.to_string(),
            mode: "chiplet-2x4".into(),
            throughput: tput,
            globally_equivalent,
        });
    }
    rows
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn ablations_produce_sane_shapes() {
        std::env::set_var("MP5_EXP_PACKETS", "4000");
        std::env::set_var("MP5_EXP_SEEDS", "2");

        let fifo = ablation_fifo();
        assert_eq!(fifo.len(), 6);
        // Delivered fraction is monotone (within noise) in capacity for
        // the worst-case workload, and the real app never drops.
        assert!(fifo
            .windows(2)
            .all(|w| w[1].delivered_synth >= w[0].delivered_synth - 0.02));
        assert!(fifo.iter().all(|r| r.delivered_app > 0.999));

        let remap = ablation_remap();
        let never = remap.iter().find(|r| r.period > 1_000_000).unwrap();
        assert_eq!(never.moves, 0);
        let fast = remap.iter().find(|r| r.period == 50).unwrap();
        assert!(fast.moves > 0);
        assert!(fast.throughput >= never.throughput - 0.02);

        let chip = ext_chiplet();
        let seq_mono = chip
            .iter()
            .find(|r| r.app == "sequencer" && r.mode == "monolithic-8")
            .unwrap();
        let seq_chip = chip
            .iter()
            .find(|r| r.app == "sequencer" && r.mode == "chiplet-2x4")
            .unwrap();
        assert!(seq_mono.globally_equivalent);
        assert!(
            !seq_chip.globally_equivalent,
            "a global sequencer cannot survive independent chiplets"
        );
    }
}
