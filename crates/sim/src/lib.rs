//! Experiment harness: runs the paper's evaluation (§4) end to end.
//!
//! * [`metrics`] — condition-C1 violation counting and intra-flow
//!   reordering analysis.
//! * [`synth`] — the synthetic stateful programs and traces behind the
//!   §4.3 sensitivity experiments.
//! * [`experiments`] — one runner per paper table/figure, returning
//!   structured rows that the `mp5-bench` targets print and
//!   EXPERIMENTS.md records.
//! * [`table`] — plain-text table rendering and CSV/JSON emission.
//! * [`chaos`] — randomized seed-deterministic fault campaigns
//!   (auditor-gated, engine-bit-identity-checked) shared by the
//!   `mp5chaos` binary and the chaos test suite.
//!
//! Runners fan independent simulator runs out over OS threads (each run
//! is single-threaded and deterministic; only scheduling of whole runs
//! is parallel, so results are bit-stable regardless of thread count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod metrics;
pub mod synth;
pub mod table;

pub use metrics::{c1_violation_fraction, c1_violation_sets, reordered_flow_fraction};
pub use synth::{synthetic_program, synthetic_trace, SynthConfig};
pub use table::TableError;

/// Runs `jobs` closures on a thread pool and returns results in job
/// order. Each job must be independent and deterministic.
pub fn parallel_map<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let jobs: Vec<std::sync::Mutex<Option<F>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx: Vec<std::sync::Mutex<&mut Option<T>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("no poison")
                    .take()
                    .expect("job taken once");
                let out = job();
                **results_mx[i].lock().expect("no poison") = Some(out);
            });
        }
    });
    drop(results_mx);
    results
        .into_iter()
        .map(|r| r.expect("all jobs ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let out = parallel_map(jobs);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        assert!(parallel_map(empty).is_empty());
        assert_eq!(parallel_map(vec![|| 7]), vec![7]);
    }
}
