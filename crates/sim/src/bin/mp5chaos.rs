//! `mp5chaos` — randomized (but fully seed-deterministic) fault
//! campaigns against the MP5 switch.
//!
//! ```sh
//! cargo run --release -p mp5-sim --bin mp5chaos -- \
//!     [--seeds N] [--start-seed N] [--apps all|name,name,...] \
//!     [--pipelines K] [--packets N] [--horizon CYCLES] \
//!     [--seq-only] [--dump-plans DIR]
//! ```
//!
//! For every `app × seed` case the harness rolls a chaos
//! [`FaultPlan`](mp5_faults::FaultPlan) (stalls, recoverable phantom
//! drops, forced FIFO overflow, crossbar grant delays, remap aborts,
//! and at most one pipeline kill), runs it traced on the sequential
//! engine, and checks the three chaos contracts: clean finish with a
//! closed fault ledger, zero findings from the offline invariant
//! auditor, and — unless `--seq-only` — bit-identity between the
//! sequential and parallel cycle engines under the identical plan.
//!
//! Every failing case prints its seed; re-running with
//! `--seeds 1 --start-seed <seed> --apps <app> --dump-plans .`
//! reproduces it exactly and writes the offending plan as JSON for
//! `mp5run --faults`.

use mp5_sim::chaos::{self, ChaosOpts};

struct Cli {
    seeds: u64,
    start_seed: u64,
    apps: String,
    opts: ChaosOpts,
    dump_plans: Option<String>,
    fabric: bool,
    kill_restore: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mp5chaos [--seeds N] [--start-seed N] [--apps all|name,...] \
         [--pipelines K] [--packets N] [--horizon CYCLES] [--seq-only] [--dump-plans DIR] \
         [--fabric] [--kill-restore]"
    );
    std::process::exit(2)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        seeds: 3,
        start_seed: 1,
        apps: "all".into(),
        opts: ChaosOpts::default(),
        dump_plans: None,
        fabric: false,
        kill_restore: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--seeds" => cli.seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--start-seed" => {
                cli.start_seed = val("--start-seed").parse().unwrap_or_else(|_| usage())
            }
            "--apps" => cli.apps = val("--apps"),
            "--pipelines" => {
                cli.opts.pipelines = val("--pipelines").parse().unwrap_or_else(|_| usage())
            }
            "--packets" => cli.opts.packets = val("--packets").parse().unwrap_or_else(|_| usage()),
            "--horizon" => cli.opts.horizon = val("--horizon").parse().unwrap_or_else(|_| usage()),
            "--seq-only" => cli.opts.check_parallel = false,
            "--dump-plans" => cli.dump_plans = Some(val("--dump-plans")),
            "--fabric" => cli.fabric = true,
            "--kill-restore" => cli.kill_restore = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    cli
}

fn selected_apps(spec: &str) -> Vec<mp5_apps::AppSpec> {
    if spec == "all" {
        return mp5_apps::ALL_APPS.to_vec();
    }
    spec.split(',')
        .map(|name| {
            *mp5_apps::by_name(name.trim()).unwrap_or_else(|| {
                eprintln!("unknown app '{name}' (try one of: all, {})", app_names());
                std::process::exit(2)
            })
        })
        .collect()
}

fn app_names() -> String {
    mp5_apps::ALL_APPS
        .iter()
        .map(|a| a.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let cli = parse_cli();
    let apps = selected_apps(&cli.apps);
    let seeds: Vec<u64> = (0..cli.seeds).map(|i| cli.start_seed + i).collect();
    println!(
        "== mp5chaos ==  {} app(s) x {} seed(s), k={}, {} packets, horizon {} cycles, engines: {}",
        apps.len(),
        seeds.len(),
        cli.opts.pipelines,
        cli.opts.packets,
        cli.opts.horizon,
        if cli.opts.check_parallel {
            "seq+par (bit-identity checked)"
        } else {
            "seq only"
        }
    );

    let outcomes = chaos::run_campaign(&apps, &seeds, &cli.opts);
    let mut failed = 0usize;
    for out in &outcomes {
        println!("{}", out.summary());
        if !out.passed() {
            failed += 1;
            for f in &out.failures {
                eprintln!("    FAIL [{} seed {}]: {f}", out.app, out.seed);
            }
            if let Some(dir) = &cli.dump_plans {
                match mp5_apps::by_name(&out.app).map(|a| a.compile()) {
                    Some(Ok(prog)) => {
                        let plan = chaos::chaos_plan(&prog, out.seed, &cli.opts);
                        let path = format!("{dir}/chaos-{}-{}.json", out.app, out.seed);
                        match std::fs::write(&path, plan.to_json()) {
                            Ok(()) => {
                                eprintln!("    plan -> {path} (replay: mp5run --faults {path})")
                            }
                            Err(e) => eprintln!("    cannot write plan to {path}: {e}"),
                        }
                    }
                    Some(Err(e)) => {
                        eprintln!("    cannot dump plan: '{}' fails to compile: {e}", out.app)
                    }
                    None => eprintln!("    cannot dump plan: '{}' is not a bundled app", out.app),
                }
            }
        }
    }

    let mut total = outcomes.len();
    if cli.kill_restore {
        println!(
            "\n-- kill-restore chaos: checkpoint / kill / restore under faults, {} case(s) --",
            apps.len() * seeds.len()
        );
        for out in chaos::run_kill_restore_campaign(&apps, &seeds, &cli.opts) {
            println!("{}", out.summary());
            if !out.passed() {
                failed += 1;
                for f in &out.failures {
                    eprintln!("    FAIL [{} seed {}]: {f}", out.app, out.seed);
                }
            }
            total += 1;
        }
    }
    if cli.fabric {
        println!(
            "\n-- fabric chaos: 4x2 leaf-spine, spine fail-stop mid-run, {} seed(s) --",
            seeds.len()
        );
        for &seed in &seeds {
            let out = chaos::run_fabric_case(seed, &cli.opts);
            println!("{}", out.summary());
            if !out.passed() {
                failed += 1;
                for f in &out.failures {
                    eprintln!("    FAIL [fabric seed {seed}]: {f}");
                }
            }
            total += 1;
        }
    }

    if failed == 0 {
        println!(
            "\nchaos PASSED: {total}/{total} case(s) clean (no panics, ledger closed, \
             auditor zero findings{})",
            if cli.opts.check_parallel {
                ", engines bit-identical"
            } else {
                ""
            }
        );
    } else {
        eprintln!("\nchaos FAILED: {failed}/{total} case(s) violated the chaos contracts");
        std::process::exit(1);
    }
}
