//! `mp5run` — run a Domino-like program file on the MP5 simulator from
//! the command line and check functional equivalence against the
//! single-pipeline reference.
//!
//! ```sh
//! cargo run --release -p mp5-sim --bin mp5run -- program.dsl \
//!     [--pipelines 4] [--packets 20000] [--pattern uniform|skewed] \
//!     [--design mp5|ideal|no-d4|static|naive|recirc] [--seed 1] \
//!     [--engine seq|par|par:N] [--exec scalar|batch] [--keys 1024] \
//!     [--packet-size 64] \
//!     [--trace out.jsonl] [--audit] [--rollup out.csv] [--chrome out.json]
//! ```
//!
//! The program's declared packet fields are filled with keys drawn from
//! the chosen access pattern (every field gets an independent draw),
//! which drives the register indexes for typical hash-indexed programs.
//!
//! `--exec scalar|batch` selects the work-phase implementation for the
//! MP5-family designs (default `batch`; results are bit-identical —
//! the scalar path is the frozen reference oracle). `recirc` has a
//! single implementation and ignores the flag.
//!
//! Observability flags (any of them switches the run into traced mode):
//!
//! * `--trace <path>` — record the full event stream as JSONL, ready
//!   for the `mp5audit` offline auditor.
//! * `--audit` — run the invariant auditor in-process on the recorded
//!   stream and exit non-zero if it reports violations.
//! * `--rollup <path>` — write per-stage / per-register metrics
//!   rollups (occupancy histograms, steer matrix, phantom waits) as CSV.
//! * `--chrome <path>` — export a Chrome-trace / Perfetto JSON timeline
//!   with one track per `(pipeline, stage)`.
//!
//! Fault injection (see `mp5-faults` and DESIGN.md §11):
//!
//! * `--faults <plan.json>` — replay a deterministic fault plan
//!   (e.g. one dumped by `mp5chaos --dump-plans`) against the run.
//! * `--chaos-seed <n>` — roll a seed-deterministic chaos plan for
//!   this program/pipeline-count instead of loading one from disk.
//!
//! Either flag prints the recovery ledger after the run; combine with
//! `--audit` to re-verify the runtime invariants under the faults.

use mp5_banzai::BanzaiSwitch;
use mp5_baselines::{RecircConfig, RecircSwitch};
use mp5_compiler::{compile, Target};
use mp5_core::{EngineMode, ExecPath, Mp5Switch, SwitchConfig};
use mp5_faults::FaultPlan;
use mp5_sim::c1_violation_fraction;
use mp5_trace::{audit, Event, MemSink, NopSink, Rollup};
use mp5_traffic::{AccessPattern, SizeDist, TraceBuilder};

struct Args {
    program: String,
    pipelines: usize,
    packets: usize,
    pattern: AccessPattern,
    design: String,
    engine: EngineMode,
    exec: ExecPath,
    seed: u64,
    keys: u64,
    packet_size: u32,
    trace_out: Option<String>,
    audit: bool,
    rollup_out: Option<String>,
    chrome_out: Option<String>,
    faults: Option<String>,
    chaos_seed: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mp5run <program.dsl> [--pipelines N] [--packets N] \
         [--pattern uniform|skewed] [--design mp5|ideal|no-d4|static|naive|recirc] \
         [--engine seq|par|par:N] [--exec scalar|batch] [--seed N] [--keys N] \
         [--packet-size BYTES] \
         [--trace FILE] [--audit] [--rollup FILE] [--chrome FILE] \
         [--faults PLAN.json] [--chaos-seed N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        program: String::new(),
        pipelines: 4,
        packets: 20_000,
        pattern: AccessPattern::Uniform,
        design: "mp5".into(),
        engine: EngineMode::Sequential,
        exec: ExecPath::Batch,
        seed: 1,
        keys: 1024,
        packet_size: 64,
        trace_out: None,
        audit: false,
        rollup_out: None,
        chrome_out: None,
        faults: None,
        chaos_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--pipelines" => {
                args.pipelines = val("--pipelines").parse().unwrap_or_else(|_| usage())
            }
            "--packets" => args.packets = val("--packets").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--keys" => args.keys = val("--keys").parse().unwrap_or_else(|_| usage()),
            "--packet-size" => {
                args.packet_size = val("--packet-size").parse().unwrap_or_else(|_| usage())
            }
            "--pattern" => {
                args.pattern = match val("--pattern").as_str() {
                    "uniform" => AccessPattern::Uniform,
                    "skewed" => AccessPattern::paper_skewed(),
                    other => {
                        eprintln!("unknown pattern '{other}'");
                        usage()
                    }
                }
            }
            "--design" => args.design = val("--design"),
            "--engine" => {
                args.engine = val("--engine").parse().unwrap_or_else(|e| {
                    eprintln!("--engine: {e}");
                    usage()
                })
            }
            "--exec" => {
                args.exec = val("--exec").parse().unwrap_or_else(|e| {
                    eprintln!("--exec: {e}");
                    usage()
                })
            }
            "--trace" => args.trace_out = Some(val("--trace")),
            "--audit" => args.audit = true,
            "--rollup" => args.rollup_out = Some(val("--rollup")),
            "--chrome" => args.chrome_out = Some(val("--chrome")),
            "--faults" => args.faults = Some(val("--faults")),
            "--chaos-seed" => {
                args.chaos_seed = Some(val("--chaos-seed").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other if args.program.is_empty() && !other.starts_with('-') => {
                args.program = other.to_string()
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    if args.program.is_empty() {
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let source = std::fs::read_to_string(&args.program).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.program);
        std::process::exit(1)
    });
    let prog = compile(&source, &Target::default()).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1)
    });
    println!(
        "compiled '{}': {} stages ({} prologue + {} body), {} register array(s), {} shardable",
        args.program,
        prog.num_stages(),
        prog.resolution.stages,
        prog.stages.len(),
        prog.regs.len(),
        prog.regs.iter().filter(|r| r.shardable).count(),
    );

    let declared = prog.declared_fields;
    let pattern = args.pattern;
    let keys = args.keys;
    let trace = TraceBuilder::new(args.packets, args.seed)
        .size(SizeDist::Fixed(args.packet_size))
        .build(prog.num_fields(), move |rng, _, f| {
            for v in f.iter_mut().take(declared) {
                *v = pattern.draw(keys, rng) as i64;
            }
        });

    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
    let k = args.pipelines;

    // Fault plan: replayed from disk or rolled from a chaos seed.
    let plan: Option<FaultPlan> = match (&args.faults, args.chaos_seed) {
        (Some(_), Some(_)) => {
            eprintln!("--faults and --chaos-seed are mutually exclusive");
            usage()
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(1)
            });
            Some(FaultPlan::from_json(&text).unwrap_or_else(|e| {
                eprintln!("fault plan {path}: {e}");
                std::process::exit(1)
            }))
        }
        (None, Some(seed)) => {
            let horizon = (args.packets / k.max(1)).max(64) as u64;
            Some(FaultPlan::chaos(seed, k, prog.num_stages(), horizon))
        }
        (None, None) => None,
    };
    if let Some(p) = &plan {
        if let Err(e) = p.validate(k, prog.num_stages()) {
            eprintln!("fault plan invalid for k={k}: {e}");
            std::process::exit(1);
        }
        println!("fault plan: {} fault(s) scheduled", p.len());
    }

    // Any observability flag switches the run into traced mode (the
    // sink only observes; the run itself is bit-identical).
    let tracing = args.trace_out.is_some()
        || args.audit
        || args.rollup_out.is_some()
        || args.chrome_out.is_some();
    let (report, events, extra) = match args.design.as_str() {
        "recirc" => {
            let cfg = RecircConfig::new(k).with_engine(args.engine);
            let (rep, events) = match (tracing, &plan) {
                (true, Some(p)) => {
                    let (rep, sink) =
                        RecircSwitch::with_faults(prog, cfg, MemSink::new(), p.injector())
                            .run_traced(trace);
                    (rep, sink.into_events())
                }
                (true, None) => {
                    let (rep, sink) =
                        RecircSwitch::with_sink(prog, cfg, MemSink::new()).run_traced(trace);
                    (rep, sink.into_events())
                }
                (false, Some(p)) => (
                    RecircSwitch::with_faults(prog, cfg, NopSink, p.injector()).run(trace),
                    Vec::new(),
                ),
                (false, None) => (RecircSwitch::new(prog, cfg).run(trace), Vec::new()),
            };
            let extra = format!(
                ", recircs/pkt {:.2}, max passes {}",
                rep.recircs_per_packet(),
                rep.max_passes
            );
            (rep.report, events, extra)
        }
        design => {
            let cfg = match design {
                "mp5" => SwitchConfig::mp5(k),
                "ideal" => SwitchConfig::ideal(k),
                "no-d4" => SwitchConfig::no_d4(k),
                "static" => SwitchConfig::static_shard(k, args.seed),
                "naive" => SwitchConfig::naive(k),
                other => {
                    eprintln!("unknown design '{other}'");
                    usage()
                }
            }
            .with_engine(args.engine)
            .with_exec(args.exec);
            let (report, events) = match (tracing, &plan) {
                (true, Some(p)) => {
                    let (report, sink) =
                        Mp5Switch::with_faults(prog, cfg, MemSink::new(), p.injector())
                            .run_traced(trace);
                    (report, sink.into_events())
                }
                (true, None) => {
                    let (report, sink) =
                        Mp5Switch::with_sink(prog, cfg, MemSink::new()).run_traced(trace);
                    (report, sink.into_events())
                }
                (false, Some(p)) => (
                    Mp5Switch::with_faults(prog, cfg, NopSink, p.injector()).run(trace),
                    Vec::new(),
                ),
                (false, None) => (Mp5Switch::new(prog, cfg).run(trace), Vec::new()),
            };
            (report, events, String::new())
        }
    };

    let c1 = c1_violation_fraction(&reference.access_log, &report.result.access_log);
    println!(
        "design {:<7} k={k} exec={}: throughput {:.3} of line rate, completed {}/{}, \
         steered {}, remap moves {}, max queue {}{extra}",
        args.design,
        args.exec,
        report.normalized_throughput(),
        report.completed,
        report.offered,
        report.steered,
        report.remap_moves,
        report.max_queue_depth,
    );
    println!(
        "functional equivalence: {}   C1 violations: {:.2}%",
        report.result.equivalent_to(&reference),
        c1 * 100.0
    );
    if plan.is_some() {
        let f = &report.fault;
        println!(
            "fault ledger: injected {} = recovered {} + degraded {} ({}), \
             degraded cycles {}, evacuated indexes {}, phantoms recovered {}/{}, \
             stall cycles {}, delayed grants {}, aborted remaps {}, dead pipelines {:?}",
            f.injected,
            f.recovered,
            f.degraded,
            if f.accounted() { "closed" } else { "OPEN" },
            f.degraded_cycles,
            f.evacuated_indexes,
            f.phantoms_recovered,
            f.phantoms_dropped,
            f.stall_cycles,
            f.delayed_grants,
            f.aborted_remaps,
            f.dead_pipelines,
        );
    }

    if let Some(path) = &args.trace_out {
        write_or_die(path, &jsonl(&events), "trace");
        println!("trace: {} events -> {path}", events.len());
    }
    if let Some(path) = &args.rollup_out {
        write_or_die(path, &Rollup::from_events(&events).to_csv(), "rollup");
        println!("rollup: -> {path}");
    }
    if let Some(path) = &args.chrome_out {
        write_or_die(path, &mp5_trace::chrome::export(&events), "chrome trace");
        println!("chrome trace: -> {path}");
    }
    if args.audit {
        let rep = audit(&events);
        print!("{rep}");
        if !rep.is_clean() {
            std::process::exit(1);
        }
    }
}

/// Serializes an event stream as JSONL (one event per line).
fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    out
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}
