//! `mp5run` — run a Domino-like program file on the MP5 simulator from
//! the command line and check functional equivalence against the
//! single-pipeline reference.
//!
//! ```sh
//! cargo run --release -p mp5-sim --bin mp5run -- program.dsl \
//!     [--pipelines 4] [--packets 20000] [--pattern uniform|skewed] \
//!     [--design mp5|ideal|no-d4|static|naive|recirc] [--seed 1] \
//!     [--keys 1024] [--packet-size 64]
//! ```
//!
//! The program's declared packet fields are filled with keys drawn from
//! the chosen access pattern (every field gets an independent draw),
//! which drives the register indexes for typical hash-indexed programs.

use mp5_banzai::BanzaiSwitch;
use mp5_baselines::{RecircConfig, RecircSwitch};
use mp5_compiler::{compile, Target};
use mp5_core::{Mp5Switch, SwitchConfig};
use mp5_sim::c1_violation_fraction;
use mp5_traffic::{AccessPattern, SizeDist, TraceBuilder};

struct Args {
    program: String,
    pipelines: usize,
    packets: usize,
    pattern: AccessPattern,
    design: String,
    seed: u64,
    keys: u64,
    packet_size: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: mp5run <program.dsl> [--pipelines N] [--packets N] \
         [--pattern uniform|skewed] [--design mp5|ideal|no-d4|static|naive|recirc] \
         [--seed N] [--keys N] [--packet-size BYTES]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        program: String::new(),
        pipelines: 4,
        packets: 20_000,
        pattern: AccessPattern::Uniform,
        design: "mp5".into(),
        seed: 1,
        keys: 1024,
        packet_size: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--pipelines" => {
                args.pipelines = val("--pipelines").parse().unwrap_or_else(|_| usage())
            }
            "--packets" => args.packets = val("--packets").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--keys" => args.keys = val("--keys").parse().unwrap_or_else(|_| usage()),
            "--packet-size" => {
                args.packet_size = val("--packet-size").parse().unwrap_or_else(|_| usage())
            }
            "--pattern" => {
                args.pattern = match val("--pattern").as_str() {
                    "uniform" => AccessPattern::Uniform,
                    "skewed" => AccessPattern::paper_skewed(),
                    other => {
                        eprintln!("unknown pattern '{other}'");
                        usage()
                    }
                }
            }
            "--design" => args.design = val("--design"),
            "--help" | "-h" => usage(),
            other if args.program.is_empty() && !other.starts_with('-') => {
                args.program = other.to_string()
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    if args.program.is_empty() {
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let source = std::fs::read_to_string(&args.program).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.program);
        std::process::exit(1)
    });
    let prog = compile(&source, &Target::default()).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1)
    });
    println!(
        "compiled '{}': {} stages ({} prologue + {} body), {} register array(s), {} shardable",
        args.program,
        prog.num_stages(),
        prog.resolution.stages,
        prog.stages.len(),
        prog.regs.len(),
        prog.regs.iter().filter(|r| r.shardable).count(),
    );

    let declared = prog.declared_fields;
    let pattern = args.pattern;
    let keys = args.keys;
    let trace = TraceBuilder::new(args.packets, args.seed)
        .size(SizeDist::Fixed(args.packet_size))
        .build(prog.num_fields(), move |rng, _, f| {
            for v in f.iter_mut().take(declared) {
                *v = pattern.draw(keys, rng) as i64;
            }
        });

    let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
    let k = args.pipelines;
    let (report, extra) = match args.design.as_str() {
        "mp5" => (
            Mp5Switch::new(prog, SwitchConfig::mp5(k)).run(trace),
            String::new(),
        ),
        "ideal" => (
            Mp5Switch::new(prog, SwitchConfig::ideal(k)).run(trace),
            String::new(),
        ),
        "no-d4" => (
            Mp5Switch::new(prog, SwitchConfig::no_d4(k)).run(trace),
            String::new(),
        ),
        "static" => (
            Mp5Switch::new(prog, SwitchConfig::static_shard(k, args.seed)).run(trace),
            String::new(),
        ),
        "naive" => (
            Mp5Switch::new(prog, SwitchConfig::naive(k)).run(trace),
            String::new(),
        ),
        "recirc" => {
            let rep = RecircSwitch::new(prog, RecircConfig::new(k)).run(trace);
            let extra = format!(
                ", recircs/pkt {:.2}, max passes {}",
                rep.recircs_per_packet(),
                rep.max_passes
            );
            (rep.report, extra)
        }
        other => {
            eprintln!("unknown design '{other}'");
            usage()
        }
    };

    let c1 = c1_violation_fraction(&reference.access_log, &report.result.access_log);
    println!(
        "design {:<7} k={k}: throughput {:.3} of line rate, completed {}/{}, \
         steered {}, remap moves {}, max queue {}{extra}",
        args.design,
        report.normalized_throughput(),
        report.completed,
        report.offered,
        report.steered,
        report.remap_moves,
        report.max_queue_depth,
    );
    println!(
        "functional equivalence: {}   C1 violations: {:.2}%",
        report.result.equivalent_to(&reference),
        c1 * 100.0
    );
}
