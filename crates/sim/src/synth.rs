//! Synthetic programs and traces for the §4.3 sensitivity analysis.
//!
//! The paper's simulator configuration: a 64-port, 16-stage switch with
//! a configurable number of stateful stages (default 4), one register
//! array per stateful stage (default size 512), and line-rate input
//! with uniform or skewed (95 %→30 %) state access patterns.

use mp5_compiler::{compile, CompileError, CompiledProgram, Target};
use mp5_traffic::{AccessPattern, SizeDist, TraceBuilder};
use mp5_types::Packet;

/// Configuration of one sensitivity experiment run (§4.3.1 defaults).
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Parallel pipelines (paper default 4).
    pub pipelines: usize,
    /// Stateful stages (paper default 4).
    pub stateful_stages: usize,
    /// Register array size (paper default 512).
    pub reg_size: u32,
    /// Packet size in bytes (paper default 64, the worst case).
    pub packet_size: u32,
    /// Number of packets per run.
    pub packets: usize,
    /// State access pattern.
    pub pattern: AccessPattern,
    /// Trace RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            pipelines: 4,
            stateful_stages: 4,
            reg_size: 512,
            packet_size: 64,
            packets: 20_000,
            pattern: AccessPattern::Uniform,
            seed: 1,
        }
    }
}

/// Generates the synthetic program: `m` stateful stages, each with one
/// register array of `reg_size` entries indexed by its own header field
/// (a stateless index computation, so every array shards — the paper's
/// common case). `m == 0` yields a purely stateless program.
pub fn synthetic_program(stateful_stages: usize, reg_size: u32) -> String {
    let mut fields = String::new();
    for i in 0..stateful_stages.max(1) {
        fields.push_str(&format!("int h{i}; "));
    }
    fields.push_str("int out;");
    let mut body = String::new();
    for i in 0..stateful_stages {
        body.push_str(&format!(
            "r{i}[p.h{i} % {reg_size}] = r{i}[p.h{i} % {reg_size}] + 1;\n"
        ));
    }
    // A stateless tail so even m = 0 does real work.
    body.push_str("p.out = p.h0 * 3 + 1;\n");
    let mut regs = String::new();
    for i in 0..stateful_stages {
        regs.push_str(&format!("int r{i}[{reg_size}] = {{0}};\n"));
    }
    format!("struct Packet {{ {fields} }};\n{regs}\nvoid func(struct Packet p) {{\n{body}}}\n")
}

/// Compiles the synthetic program for the default 16-stage machine.
pub fn synthetic_compiled(
    stateful_stages: usize,
    reg_size: u32,
) -> Result<CompiledProgram, CompileError> {
    compile(
        &synthetic_program(stateful_stages, reg_size),
        &Target::default(),
    )
}

/// Generates the line-rate trace driving a synthetic program: each
/// stateful stage's key field is drawn independently from the access
/// pattern over `[0, reg_size)`.
pub fn synthetic_trace(prog: &CompiledProgram, cfg: &SynthConfig) -> Vec<Packet> {
    let nf = prog.num_fields();
    let m = cfg.stateful_stages;
    let reg_size = cfg.reg_size as u64;
    let pattern = cfg.pattern;
    TraceBuilder::new(cfg.packets, cfg.seed)
        .size(SizeDist::Fixed(cfg.packet_size))
        .build(nf, move |rng, _, fields| {
            for field in fields.iter_mut().take(m.max(1)) {
                *field = pattern.draw(reg_size, rng) as i64;
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_banzai::BanzaiSwitch;
    use mp5_core::{Mp5Switch, SwitchConfig};

    #[test]
    fn synthetic_programs_compile_up_to_10_stateful_stages() {
        for m in 0..=10 {
            let prog = synthetic_compiled(m, 512).unwrap_or_else(|e| panic!("m={m}: {e}"));
            let stateful = prog.stages.iter().filter(|s| !s.regs.is_empty()).count();
            assert_eq!(stateful, m, "m={m}");
            assert!(prog.num_stages() <= 16);
        }
    }

    #[test]
    fn register_sizes_span_paper_range() {
        for size in [1u32, 16, 512, 4096] {
            let prog = synthetic_compiled(4, size).unwrap();
            assert!(prog.regs.iter().all(|r| r.size == size));
        }
    }

    #[test]
    fn synthetic_run_is_equivalent_on_mp5() {
        let cfg = SynthConfig {
            packets: 3000,
            ..Default::default()
        };
        let prog = synthetic_compiled(cfg.stateful_stages, cfg.reg_size).unwrap();
        let trace = synthetic_trace(&prog, &cfg);
        let reference = BanzaiSwitch::new(prog.clone()).run(trace.clone());
        let report = Mp5Switch::new(prog, SwitchConfig::mp5(cfg.pipelines)).run(trace);
        assert!(report.result.equivalent_to(&reference));
    }

    #[test]
    fn stateless_synthetic_hits_line_rate() {
        let cfg = SynthConfig {
            stateful_stages: 0,
            packets: 5000,
            ..Default::default()
        };
        let prog = synthetic_compiled(0, 512).unwrap();
        let trace = synthetic_trace(&prog, &cfg);
        let report = Mp5Switch::new(prog, SwitchConfig::mp5(4)).run(trace);
        assert!(report.normalized_throughput() > 0.95);
    }
}
