//! Chaos harness: randomized, seed-deterministic fault campaigns.
//!
//! Each *case* rolls a [`FaultPlan::chaos`] schedule for one bundled
//! application and executes it on the MP5 switch with tracing on, then
//! checks the three chaos contracts:
//!
//! 1. **No panics / clean finish** — the run drains, packets are
//!    conserved, and every injected fault is accounted
//!    (`injected == recovered + degraded`).
//! 2. **Auditor-clean** — the recorded event stream passes the offline
//!    invariant auditor (`mp5audit`) with zero findings: phantom
//!    pairing, Invariant 1/2, C1 and packet conservation all hold
//!    *under faults*.
//! 3. **Engine bit-identity** — the sequential and parallel cycle
//!    engines produce the same [`RunReport`] and the same event-stream
//!    hash under the identical fault plan.
//!
//! The harness is pure library code so the `mp5chaos` binary and the
//! `tests/chaos.rs` suite share one implementation.

use mp5_core::{EngineMode, Mp5Switch, RunReport, SwitchConfig};
use mp5_faults::FaultPlan;
use mp5_trace::{audit, stream_hash, MemSink};

/// Knobs for one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Pipelines `k`.
    pub pipelines: usize,
    /// Packets per run.
    pub packets: usize,
    /// Rough cycle horizon the fault schedule is rolled over.
    pub horizon: u64,
    /// Also run the parallel engine and demand bit-identity.
    pub check_parallel: bool,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            pipelines: 4,
            packets: 600,
            horizon: 400,
            check_parallel: true,
        }
    }
}

/// The outcome of one chaos case (app × seed).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Application name.
    pub app: String,
    /// Chaos seed (drives both the traffic trace and the fault plan).
    pub seed: u64,
    /// Faults in the rolled plan.
    pub plan_len: usize,
    /// The sequential run's report.
    pub report: RunReport,
    /// Auditor findings on the sequential event stream.
    pub audit_findings: usize,
    /// Problems found; empty means the case passed.
    pub failures: Vec<String>,
}

impl ChaosOutcome {
    /// Did every chaos contract hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One summary line for tables and logs.
    pub fn summary(&self) -> String {
        let f = &self.report.fault;
        format!(
            "{:<10} seed {:>3}: {} faults, injected {} = recovered {} + degraded {}, \
             {} degraded cycle(s), {} phantom(s) recovered, audit findings {} -> {}",
            self.app,
            self.seed,
            self.plan_len,
            f.injected,
            f.recovered,
            f.degraded,
            f.degraded_cycles,
            f.phantoms_recovered,
            self.audit_findings,
            if self.passed() { "ok" } else { "FAIL" }
        )
    }
}

/// Rolls the chaos fault plan for one case. Exposed so callers can
/// print or persist the exact schedule that a failing seed produced.
pub fn chaos_plan(prog: &mp5_compiler::CompiledProgram, seed: u64, opts: &ChaosOpts) -> FaultPlan {
    FaultPlan::chaos(seed, opts.pipelines, prog.num_stages(), opts.horizon)
}

/// Runs one chaos case: app × seed, both engines, auditor-gated.
pub fn run_case(app: &mp5_apps::AppSpec, seed: u64, opts: &ChaosOpts) -> ChaosOutcome {
    let (prog, trace) = crate::experiments::app_trace(app, opts.packets, seed);
    let plan = chaos_plan(&prog, seed, opts);
    let mut failures = Vec::new();
    if let Err(e) = plan.validate(opts.pipelines, prog.num_stages()) {
        failures.push(format!("chaos plan invalid: {e}"));
    }

    let cfg = SwitchConfig::mp5(opts.pipelines);
    let (seq_rep, sink) =
        Mp5Switch::with_faults(prog.clone(), cfg.clone(), MemSink::new(), plan.injector())
            .run_traced(trace.clone());
    let seq_events = sink.into_events();

    if seq_rep.completed + seq_rep.drops.total_data() != seq_rep.offered {
        failures.push(format!(
            "packets not conserved: completed {} + data drops {} != offered {}",
            seq_rep.completed,
            seq_rep.drops.total_data(),
            seq_rep.offered
        ));
    }
    if !seq_rep.fault.accounted() {
        failures.push(format!(
            "fault ledger broken: injected {} != recovered {} + degraded {}",
            seq_rep.fault.injected, seq_rep.fault.recovered, seq_rep.fault.degraded
        ));
    }
    // Faults scheduled past the drain cycle legitimately never fire, so
    // `injected <= plan.len()` rather than equality.
    if seq_rep.fault.injected as usize > plan.len() {
        failures.push(format!(
            "more faults fired ({}) than the plan holds ({})",
            seq_rep.fault.injected,
            plan.len()
        ));
    }

    let audit_rep = audit(&seq_events);
    if !audit_rep.is_clean() {
        let mut shown = String::new();
        for f in audit_rep.findings.iter().take(3) {
            shown.push_str(&format!(" [{f}]"));
        }
        failures.push(format!(
            "auditor found {} violation(s) under faults:{shown}",
            audit_rep.findings.len()
        ));
    }

    if opts.check_parallel {
        let par_cfg = cfg.with_engine(EngineMode::Parallel(opts.pipelines));
        let (par_rep, par_sink) =
            Mp5Switch::with_faults(prog, par_cfg, MemSink::new(), plan.injector())
                .run_traced(trace);
        if par_rep != seq_rep {
            failures.push("parallel engine diverged from sequential under faults".into());
        }
        if stream_hash(&par_sink.into_events()) != stream_hash(&seq_events) {
            failures.push("parallel event stream diverged from sequential under faults".into());
        }
    }

    ChaosOutcome {
        app: app.name.to_string(),
        seed,
        plan_len: plan.len(),
        report: seq_rep,
        audit_findings: audit_rep.findings.len(),
        failures,
    }
}

/// Runs a whole campaign: every app × every seed. Cases run on the
/// process thread pool (each case is single-threaded and
/// deterministic). Returns outcomes in `(app, seed)` order.
pub fn run_campaign(
    apps: &[mp5_apps::AppSpec],
    seeds: &[u64],
    opts: &ChaosOpts,
) -> Vec<ChaosOutcome> {
    let mut jobs: Vec<Box<dyn FnOnce() -> ChaosOutcome + Send>> = Vec::new();
    for app in apps {
        let app = *app;
        for &seed in seeds {
            let opts = opts.clone();
            jobs.push(Box::new(move || run_case(&app, seed, &opts)));
        }
    }
    crate::parallel_map(jobs)
}

/// The outcome of one fabric chaos case: a leaf–spine fabric loses a
/// spine mid-run and must degrade gracefully instead of collapsing.
#[derive(Debug, Clone)]
pub struct FabricChaosOutcome {
    /// Chaos seed (drives workload, ECMP salt, and kill timing).
    pub seed: u64,
    /// The fabric report of the (sequential) kill run.
    pub report: mp5_topo::FabricReport,
    /// Problems found; empty means the case passed.
    pub failures: Vec<String>,
}

impl FabricChaosOutcome {
    /// Did every fabric chaos contract hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One summary line for tables and logs.
    pub fn summary(&self) -> String {
        let r = &self.report;
        format!(
            "fabric     seed {:>3}: spine killed, delivered {}/{} ({:.1}%), \
             stranded {} (dead {} + to-dead {} + no-route {}), ledger {} -> {}",
            self.seed,
            r.delivered,
            r.injected,
            100.0 * r.delivered_fraction(),
            r.lost_in_dead + r.dropped_to_dead + r.dropped_no_route,
            r.lost_in_dead,
            r.dropped_to_dead,
            r.dropped_no_route,
            if r.conservation_closed() {
                "closed"
            } else {
                "OPEN"
            },
            if self.passed() { "ok" } else { "FAIL" }
        )
    }
}

/// Runs one fabric chaos case: a 4-leaf/2-spine fabric under a uniform
/// datacenter workload loses one spine mid-run (which spine and when
/// derive from the seed). Contracts: the conservation ledger closes,
/// delivery degrades to the surviving paths instead of collapsing (the
/// surviving spine keeps forwarding and most packets still arrive), and
/// the whole faulted run is bit-identical across the sequential and
/// parallel cycle engines.
pub fn run_fabric_case(seed: u64, opts: &ChaosOpts) -> FabricChaosOutcome {
    use mp5_topo::{Fabric, FabricConfig, SpineKill, TopologyConfig};

    let app = mp5_apps::by_name("heavy_hitter").expect("bundled app");
    let prog = app.compile().expect("bundled app compiles");
    let fill = app.fill;
    let leaves = 4usize;
    let kill = SpineKill {
        spine: leaves as u32 + (seed % 2) as u32,
        at_tick: 150 + seed % 200,
    };
    let mut failures = Vec::new();

    let run = |engine: EngineMode| {
        let topo = TopologyConfig::leaf_spine(leaves, 2, 2)
            .validate()
            .expect("valid topology");
        let hosts = topo.num_hosts();
        let mut cfg = FabricConfig::new(
            SwitchConfig::mp5(opts.pipelines)
                .with_hardware_fifos()
                .with_engine(engine),
        );
        cfg.seed = seed;
        cfg.kill_spine = Some(kill);
        let workload = mp5_traffic::DcWorkload::new(hosts, 600, seed)
            .load(0.7)
            .max_pkts_per_flow(4);
        let prog2 = prog.clone();
        Fabric::new(topo, cfg, prog.clone())
            .expect("valid fabric config")
            .run(workload.stream(), move |key, rng, fields| {
                fill(&prog2, key, rng, fields)
            })
            .report
    };

    let seq = run(EngineMode::Sequential);
    if !seq.conservation_closed() {
        failures.push(format!(
            "conservation ledger open: injected {} != delivered {} + accounted drops",
            seq.injected, seq.delivered
        ));
    }
    let dead = kill.spine as usize;
    let alive = leaves + (dead - leaves + 1) % 2;
    if !seq.switches[dead].dead {
        failures.push(format!("spine {dead} was not marked dead"));
    }
    if seq.switches[alive].dead {
        failures.push(format!("surviving spine {alive} wrongly marked dead"));
    }
    // Graceful degradation: the survivor keeps forwarding, and the
    // fabric still delivers the bulk of the traffic over it.
    if seq.switches[alive].completed <= seq.switches[dead].completed {
        failures.push(format!(
            "surviving spine forwarded {} packets, dead one {} — traffic did not shift",
            seq.switches[alive].completed, seq.switches[dead].completed
        ));
    }
    if seq.delivered_fraction() < 0.5 {
        failures.push(format!(
            "fabric collapsed: only {:.1}% delivered after a single-spine loss",
            100.0 * seq.delivered_fraction()
        ));
    }
    if seq.lost_in_dead + seq.dropped_to_dead == 0 {
        failures.push("mid-run kill stranded no packets — kill likely never fired".into());
    }

    if opts.check_parallel {
        let par = run(EngineMode::Parallel(opts.pipelines));
        if par != seq {
            failures.push(format!(
                "parallel engine diverged from sequential under spine kill \
                 (digest {:#x} vs {:#x})",
                par.delivery_digest, seq.delivery_digest
            ));
        }
    }

    FabricChaosOutcome {
        seed,
        report: seq,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_case_passes_on_flowlet() {
        let opts = ChaosOpts {
            packets: 300,
            horizon: 200,
            ..ChaosOpts::default()
        };
        let out = run_case(&mp5_apps::PAPER_APPS[0], 7, &opts);
        assert!(out.passed(), "chaos case failed: {:?}", out.failures);
        assert!(out.plan_len >= 3, "chaos plans roll at least 3 faults");
        assert!(out.report.fault.any(), "at least one fault must fire");
    }

    #[test]
    fn fabric_chaos_case_survives_a_spine_kill() {
        let out = run_fabric_case(11, &ChaosOpts::default());
        assert!(out.passed(), "fabric chaos failed: {:?}", out.failures);
        assert!(out.report.conservation_closed());
    }

    #[test]
    fn chaos_plans_are_seed_deterministic() {
        let prog = mp5_apps::PAPER_APPS[0].compile().expect("compiles");
        let opts = ChaosOpts::default();
        let a = chaos_plan(&prog, 42, &opts);
        let b = chaos_plan(&prog, 42, &opts);
        assert_eq!(a.to_json(), b.to_json());
        let c = chaos_plan(&prog, 43, &opts);
        assert_ne!(a.to_json(), c.to_json());
    }
}

// ---------------------------------------------------------------------
// Kill–restore chaos: crash-safety of the snapshot/restore path
// ---------------------------------------------------------------------

/// The outcome of one kill–restore case: a chaos-faulted run is
/// checkpointed every N cycles through the full snapshot codec, killed
/// at the second checkpoint, restored, and must finish bit-identically
/// to the run that was never interrupted.
#[derive(Debug, Clone)]
pub struct KillRestoreOutcome {
    /// Application name.
    pub app: String,
    /// Chaos seed (drives traffic and the fault plan).
    pub seed: u64,
    /// Checkpoint cadence used (cycles).
    pub every: u64,
    /// Cycle the process was "killed" at (== the last checkpoint).
    pub kill_cycle: u64,
    /// Checkpoints taken (each round-tripped through the codec).
    pub checkpoints: u64,
    /// Auditor findings on the stitched (pre-kill + post-restore)
    /// event stream.
    pub audit_findings: usize,
    /// Problems found; empty means the case passed.
    pub failures: Vec<String>,
}

impl KillRestoreOutcome {
    /// Did every kill–restore contract hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One summary line for tables and logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} seed {:>3}: {} checkpoint(s) every {} cycles, killed @ {}, \
             audit findings {} -> {}",
            self.app,
            self.seed,
            self.checkpoints,
            self.every,
            self.kill_cycle,
            self.audit_findings,
            if self.passed() { "ok" } else { "FAIL" }
        )
    }
}

/// Runs one kill–restore case: app × seed under the same chaos fault
/// plan as [`run_case`]. Contracts:
///
/// 1. Every checkpoint survives the snapshot codec losslessly.
/// 2. The restored run (from the last pre-kill checkpoint, fault
///    injector cursor included) finishes with the identical
///    [`RunReport`] and identical event-stream hash as the
///    uninterrupted oracle — on the sequential engine and (unless
///    `check_parallel` is off) restored into the parallel engine too.
/// 3. The stitched event stream (pre-kill + post-restore) passes the
///    offline auditor with zero findings, and the fault ledger closes.
pub fn run_kill_restore_case(
    app: &mp5_apps::AppSpec,
    seed: u64,
    opts: &ChaosOpts,
) -> KillRestoreOutcome {
    use mp5_serve::{Server, Snapshot};

    let (prog, trace) = crate::experiments::app_trace(app, opts.packets, seed);
    let plan = chaos_plan(&prog, seed, opts);
    let plan_json = plan.to_json();
    let cfg = SwitchConfig::mp5(opts.pipelines);
    let mut failures = Vec::new();

    // The uninterrupted oracle (sequential, traced, same fault plan).
    let (oracle_rep, oracle_sink) =
        Mp5Switch::with_faults(prog, cfg.clone(), MemSink::new(), plan.injector())
            .run_traced(trace.clone());
    let oracle_hash = stream_hash(&oracle_sink.into_events());

    // Checkpoint every ~1/5 of the run; die right after the second one
    // (the crash model for a periodic-checkpoint service: the snapshot
    // on disk is current as of the kill).
    let every = (oracle_rep.cycles / 5).max(1);
    let kill_cycle = 2 * every;

    let mut srv: Server<MemSink, mp5_faults::PlannedFaults> =
        Server::new(app.source, cfg, MemSink::new(), Some(plan_json))
            .expect("bundled app boots a server");
    srv.offer_all(trace);
    let mut checkpoints = 0u64;
    let mut last: Option<Snapshot> = None;
    while srv.cycle() < kill_cycle {
        srv.tick();
        srv.drain_egress();
        if srv.cycle().is_multiple_of(every) {
            let snap = srv.checkpoint();
            match Snapshot::decode(&snap.encode()) {
                Ok(decoded) if decoded == snap => last = Some(decoded),
                Ok(_) => {
                    failures.push(format!("checkpoint @ {} not lossless", srv.cycle()));
                    last = Some(snap);
                }
                Err(e) => {
                    failures.push(format!(
                        "checkpoint @ {} failed to decode: {e}",
                        srv.cycle()
                    ));
                    last = Some(snap);
                }
            }
            checkpoints += 1;
        }
    }
    let events_before = srv.abandon().into_events();
    let snap = last.expect("kill cycle is a checkpoint cycle");

    let mut audit_findings = 0usize;
    let engines = [
        ("seq", None),
        ("par", Some(EngineMode::Parallel(opts.pipelines))),
    ];
    for (label, engine) in engines {
        if engine.is_some() && !opts.check_parallel {
            continue;
        }
        let mut srv: Server<MemSink, mp5_faults::PlannedFaults> =
            match Server::restore(snap.clone(), MemSink::new(), engine, None) {
                Ok(s) => s,
                Err(e) => {
                    failures.push(format!("{label} restore failed: {e}"));
                    continue;
                }
            };
        while !srv.is_idle() {
            srv.tick();
            srv.drain_egress();
        }
        let (rep, sink) = srv.finish();
        if rep != oracle_rep {
            failures.push(format!(
                "{label} restore diverged from the uninterrupted run"
            ));
        }
        if !rep.fault.accounted() {
            failures.push(format!(
                "{label} restore: fault ledger open (injected {} != recovered {} + degraded {})",
                rep.fault.injected, rep.fault.recovered, rep.fault.degraded
            ));
        }
        let mut stitched = events_before.clone();
        stitched.extend(sink.into_events());
        if stream_hash(&stitched) != oracle_hash {
            failures.push(format!("{label} restored event stream diverged"));
        }
        if label == "seq" {
            let audit_rep = audit(&stitched);
            audit_findings = audit_rep.findings.len();
            if !audit_rep.is_clean() {
                let mut shown = String::new();
                for f in audit_rep.findings.iter().take(3) {
                    shown.push_str(&format!(" [{f}]"));
                }
                failures.push(format!(
                    "auditor found {} violation(s) on the stitched stream:{shown}",
                    audit_rep.findings.len()
                ));
            }
        }
    }

    KillRestoreOutcome {
        app: app.name.to_string(),
        seed,
        every,
        kill_cycle,
        checkpoints,
        audit_findings,
        failures,
    }
}

/// Runs a kill–restore campaign: every app × every seed, on the
/// process thread pool. Returns outcomes in `(app, seed)` order.
pub fn run_kill_restore_campaign(
    apps: &[mp5_apps::AppSpec],
    seeds: &[u64],
    opts: &ChaosOpts,
) -> Vec<KillRestoreOutcome> {
    let mut jobs: Vec<Box<dyn FnOnce() -> KillRestoreOutcome + Send>> = Vec::new();
    for app in apps {
        let app = *app;
        for &seed in seeds {
            let opts = opts.clone();
            jobs.push(Box::new(move || run_kill_restore_case(&app, seed, &opts)));
        }
    }
    crate::parallel_map(jobs)
}
