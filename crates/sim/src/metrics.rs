//! Correctness metrics: condition C1 and packet reordering.

use std::collections::{HashMap, HashSet};

use mp5_banzai::AccessLog;
use mp5_types::{PacketId, Value};

/// Fraction of packets that violate condition C1 — *state access order
/// equivalence* (§3): "for each register state, the same set of input
/// packets must access the state and in the same order in both single
/// and multi-pipelined switch."
///
/// A packet violates C1 if, for any state it accesses, it was served
/// before some packet that precedes it in the reference (single
/// pipeline) order — i.e. it jumped the queue — or if its access set
/// differs from the reference. The fraction is over packets that access
/// at least one state in the reference run (§4.3.2 reports 14–26 % for
/// no-D4 and 18–31 % for recirculation).
pub fn c1_violation_fraction(reference: &AccessLog, actual: &AccessLog) -> f64 {
    let (violators, accessors) = c1_violation_sets(reference, actual);
    if accessors.is_empty() {
        0.0
    } else {
        violators.len() as f64 / accessors.len() as f64
    }
}

/// The exact packet sets behind [`c1_violation_fraction`]:
/// `(violators, accessors)`.
///
/// `accessors` is every packet that touches at least one register state
/// in the reference run; `violators` is the subset that jumped the
/// reference serial order (or whose access set diverged) at any state.
/// Exposing the sets — not just the ratio — lets the offline trace
/// auditor's per-packet verdicts be cross-checked against this online
/// computation packet-by-packet.
pub fn c1_violation_sets(
    reference: &AccessLog,
    actual: &AccessLog,
) -> (HashSet<PacketId>, HashSet<PacketId>) {
    let mut accessors: HashSet<PacketId> = HashSet::new();
    let mut violators: HashSet<PacketId> = HashSet::new();

    for (state, ref_seq) in reference {
        let rank: HashMap<PacketId, usize> =
            ref_seq.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        accessors.extend(ref_seq.iter().copied());
        let Some(act_seq) = actual.get(state) else {
            // Nobody reached this state: every reference accessor has a
            // divergent access set.
            violators.extend(ref_seq.iter().copied());
            continue;
        };
        // Packets appearing in actual but not reference accessed a state
        // they should not have.
        for p in act_seq {
            if !rank.contains_key(p) {
                violators.insert(*p);
            }
        }
        // Packets missing from actual diverged too (e.g. dropped).
        let present: HashSet<PacketId> = act_seq.iter().copied().collect();
        for p in ref_seq {
            if !present.contains(p) {
                violators.insert(*p);
            }
        }
        // Inversions: a packet served before a reference-earlier packet.
        // Scan right-to-left tracking the minimum reference rank seen:
        // if a later-served packet has a smaller rank, this packet
        // overtook it.
        let mut min_rank_right = usize::MAX;
        for p in act_seq.iter().rev() {
            let Some(&r) = rank.get(p) else { continue };
            if r > min_rank_right {
                // Someone served after p should have been served first.
                // But the *violator* is the overtaker, i.e. packets with
                // larger rank served earlier; mark p only when p is the
                // overtaker: p has larger rank than a later-served one.
                violators.insert(*p);
            }
            min_rank_right = min_rank_right.min(r);
        }
    }
    (violators, accessors)
}

/// Fraction of multi-packet flows whose packets exited the switch in a
/// different relative order than they arrived (§3.4 "Handling
/// starvation and packet re-ordering").
///
/// `flows` maps each packet to its flow key (any hashable value);
/// `arrival_order` and `completion_order` list packet ids in entry and
/// exit order respectively.
pub fn reordered_flow_fraction(
    flows: &HashMap<PacketId, Value>,
    arrival_order: &[PacketId],
    completion_order: &[PacketId],
) -> f64 {
    let mut arr: HashMap<Value, Vec<PacketId>> = HashMap::new();
    for p in arrival_order {
        if let Some(f) = flows.get(p) {
            arr.entry(*f).or_default().push(*p);
        }
    }
    let mut done: HashMap<Value, Vec<PacketId>> = HashMap::new();
    for p in completion_order {
        if let Some(f) = flows.get(p) {
            done.entry(*f).or_default().push(*p);
        }
    }
    let mut multi = 0usize;
    let mut reordered = 0usize;
    for (f, a) in &arr {
        if a.len() < 2 {
            continue;
        }
        multi += 1;
        // Compare the completion order restricted to delivered packets
        // against the arrival order restricted to the same set.
        let d = done.get(f).cloned().unwrap_or_default();
        let delivered: HashSet<PacketId> = d.iter().copied().collect();
        let expect: Vec<PacketId> = a
            .iter()
            .copied()
            .filter(|p| delivered.contains(p))
            .collect();
        if d != expect {
            reordered += 1;
        }
    }
    if multi == 0 {
        0.0
    } else {
        reordered as f64 / multi as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_types::RegId;

    fn log(entries: &[(u16, u32, &[u64])]) -> AccessLog {
        entries
            .iter()
            .map(|&(r, i, pkts)| {
                (
                    (RegId(r), i),
                    pkts.iter().map(|&p| PacketId(p)).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    #[test]
    fn identical_logs_have_zero_violations() {
        let a = log(&[(0, 0, &[1, 2, 3]), (0, 1, &[4, 5])]);
        assert_eq!(c1_violation_fraction(&a, &a.clone()), 0.0);
    }

    #[test]
    fn single_swap_marks_the_overtaker() {
        let reference = log(&[(0, 0, &[1, 2, 3, 4])]);
        let actual = log(&[(0, 0, &[1, 3, 2, 4])]);
        // Packet 3 overtook packet 2: exactly one violator out of four.
        assert!((c1_violation_fraction(&reference, &actual) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn completely_reversed_order_blames_overtakers() {
        let reference = log(&[(0, 0, &[1, 2, 3, 4])]);
        let actual = log(&[(0, 0, &[4, 3, 2, 1])]);
        // Packets 2, 3, 4 each jumped ahead of packet 1 (and others).
        assert!((c1_violation_fraction(&reference, &actual) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn missing_accesses_count_as_violations() {
        let reference = log(&[(0, 0, &[1, 2, 3])]);
        let actual = log(&[(0, 0, &[1, 3])]);
        // Packet 2 vanished from the state's access set.
        assert!(c1_violation_fraction(&reference, &actual) > 0.3);
    }

    #[test]
    fn extra_accesses_count_as_violations() {
        let reference = log(&[(0, 0, &[1, 2])]);
        let actual = log(&[(0, 0, &[1, 2, 9])]);
        assert!(c1_violation_fraction(&reference, &actual) > 0.0);
    }

    #[test]
    fn violation_sets_name_the_exact_packets() {
        let reference = log(&[(0, 0, &[1, 2, 3, 4])]);
        let actual = log(&[(0, 0, &[1, 3, 2, 4])]);
        let (violators, accessors) = c1_violation_sets(&reference, &actual);
        assert_eq!(accessors.len(), 4);
        assert_eq!(
            violators,
            [PacketId(3)].into_iter().collect(),
            "packet 3 is the overtaker"
        );
    }

    #[test]
    fn violations_across_states_union_packets() {
        let reference = log(&[(0, 0, &[1, 2]), (0, 1, &[2, 3])]);
        let actual = log(&[(0, 0, &[2, 1]), (0, 1, &[3, 2])]);
        // Packet 2 violated at state 0; packet 3 at state 1.
        let f = c1_violation_fraction(&reference, &actual);
        assert!((f - 2.0 / 3.0).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn reordering_detects_swapped_flow_packets() {
        let flows: HashMap<PacketId, Value> =
            [(PacketId(1), 7), (PacketId(2), 7), (PacketId(3), 8)]
                .into_iter()
                .collect();
        let arrival = [PacketId(1), PacketId(2), PacketId(3)];
        let inorder = [PacketId(1), PacketId(3), PacketId(2)];
        // Flow 7 delivered 1 then 2: in order (3 belongs to flow 8).
        assert_eq!(reordered_flow_fraction(&flows, &arrival, &inorder), 0.0);
        let swapped = [PacketId(2), PacketId(3), PacketId(1)];
        assert_eq!(reordered_flow_fraction(&flows, &arrival, &swapped), 1.0);
    }

    #[test]
    fn reordering_ignores_single_packet_flows() {
        let flows: HashMap<PacketId, Value> =
            [(PacketId(1), 7), (PacketId(2), 8)].into_iter().collect();
        let arrival = [PacketId(1), PacketId(2)];
        let completion = [PacketId(2), PacketId(1)];
        assert_eq!(reordered_flow_fraction(&flows, &arrival, &completion), 0.0);
    }
}
