//! Plain-text table rendering and result archiving.

use serde::Serialize;

/// Renders rows of cells as an aligned plain-text table with a header.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a throughput as the paper's normalized form, e.g. `0.87`.
pub fn tp(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Serializes rows to a JSON string (for archiving experiment outputs).
pub fn to_json<T: Serialize>(rows: &[T]) -> String {
    serde_json::to_string_pretty(rows).expect("rows serialize")
}

/// Writes rows to CSV (header from the first row's keys via JSON).
pub fn to_csv<T: Serialize>(rows: &[T]) -> String {
    let vals: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| serde_json::to_value(r).expect("row serializes"))
        .collect();
    let Some(first) = vals.first() else {
        return String::new();
    };
    let keys: Vec<String> = first
        .as_object()
        .map(|o| o.keys().cloned().collect())
        .unwrap_or_default();
    let mut out = keys.join(",");
    out.push('\n');
    for v in &vals {
        let row: Vec<String> = keys
            .iter()
            .map(|k| match &v[k] {
                serde_json::Value::String(s) => s.clone(),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        value: f64,
    }

    #[test]
    fn render_aligns_columns() {
        let s = render(
            &["k", "throughput"],
            &[
                vec!["2".into(), "1.000".into()],
                vec!["16".into(), "0.750".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("throughput"));
        assert!(lines[2].trim_start().starts_with('2'));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![
            Row {
                name: "a".into(),
                value: 1.5,
            },
            Row {
                name: "b".into(),
                value: 2.0,
            },
        ];
        let csv = to_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,value"));
        assert_eq!(lines.next(), Some("a,1.5"));
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            name: "x".into(),
            value: 3.25,
        }];
        let j = to_json(&rows);
        let back: Vec<serde_json::Value> = serde_json::from_str(&j).unwrap();
        assert_eq!(back[0]["value"], 3.25);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(tp(0.875), "0.875");
        assert_eq!(pct(0.25), "25.0%");
    }
}
