//! Plain-text table rendering and result archiving.

use serde::Serialize;

/// Renders rows of cells as an aligned plain-text table with a header.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a throughput as the paper's normalized form, e.g. `0.87`.
pub fn tp(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Why serializing experiment rows failed.
///
/// Row types are plain structs of numbers and strings, so in practice
/// these errors indicate a programming mistake (e.g. a row type with a
/// non-string map key) — but archiving results must never panic halfway
/// through a long experiment batch, so the failure is typed and
/// propagated instead.
#[derive(Debug)]
pub enum TableError {
    /// The JSON serializer rejected a row.
    Serialize(serde_json::Error),
    /// A row did not serialize to a JSON object, so no CSV header can
    /// be derived from its keys.
    RowNotAnObject {
        /// Index of the offending row.
        row: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Serialize(e) => write!(f, "experiment rows failed to serialize: {e}"),
            TableError::RowNotAnObject { row } => {
                write!(
                    f,
                    "row {row} is not a JSON object; cannot derive a CSV header"
                )
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Serialize(e) => Some(e),
            TableError::RowNotAnObject { .. } => None,
        }
    }
}

impl From<serde_json::Error> for TableError {
    fn from(e: serde_json::Error) -> Self {
        TableError::Serialize(e)
    }
}

/// Serializes rows to a JSON string (for archiving experiment outputs).
pub fn to_json<T: Serialize>(rows: &[T]) -> Result<String, TableError> {
    Ok(serde_json::to_string_pretty(rows)?)
}

/// Writes rows to CSV (header from the first row's keys via JSON).
pub fn to_csv<T: Serialize>(rows: &[T]) -> Result<String, TableError> {
    let vals: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| serde_json::to_value(r))
        .collect::<Result<_, _>>()?;
    let Some(first) = vals.first() else {
        return Ok(String::new());
    };
    let keys: Vec<String> = match first.as_object() {
        Some(o) => o.keys().cloned().collect(),
        None => return Err(TableError::RowNotAnObject { row: 0 }),
    };
    let mut out = keys.join(",");
    out.push('\n');
    for v in &vals {
        let row: Vec<String> = keys
            .iter()
            .map(|k| match &v[k] {
                serde_json::Value::String(s) => s.clone(),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        value: f64,
    }

    #[test]
    fn render_aligns_columns() {
        let s = render(
            &["k", "throughput"],
            &[
                vec!["2".into(), "1.000".into()],
                vec!["16".into(), "0.750".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("throughput"));
        assert!(lines[2].trim_start().starts_with('2'));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![
            Row {
                name: "a".into(),
                value: 1.5,
            },
            Row {
                name: "b".into(),
                value: 2.0,
            },
        ];
        let csv = to_csv(&rows).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,value"));
        assert_eq!(lines.next(), Some("a,1.5"));
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            name: "x".into(),
            value: 3.25,
        }];
        let j = to_json(&rows).unwrap();
        let back: Vec<serde_json::Value> = serde_json::from_str(&j).unwrap();
        assert_eq!(back[0]["value"], 3.25);
    }

    #[test]
    fn csv_of_non_object_rows_is_a_typed_error() {
        // Bare numbers serialize to JSON scalars, not objects: no CSV
        // header can be derived and the error says which row is at
        // fault instead of panicking.
        let rows = vec![1u32, 2];
        match to_csv(&rows) {
            Err(TableError::RowNotAnObject { row: 0 }) => {}
            other => panic!("expected RowNotAnObject, got {other:?}"),
        }
        assert!(to_csv(&rows)
            .unwrap_err()
            .to_string()
            .contains("CSV header"));
    }

    #[test]
    fn empty_rows_serialize_cleanly() {
        let rows: Vec<Row> = Vec::new();
        assert_eq!(to_csv(&rows).unwrap(), "");
        assert_eq!(to_json(&rows).unwrap(), "[]");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(tp(0.875), "0.875");
        assert_eq!(pct(0.25), "25.0%");
    }
}
