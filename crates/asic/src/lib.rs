//! Analytic ASIC cost model (paper §4.2, Table 1).
//!
//! The paper synthesizes MP5's System-Verilog design with Synopsys DC on
//! the open 15 nm NanGate library and reports chip area and achievable
//! clock for the *MP5-specific* components: inter-stage crossbars,
//! per-stage FIFOs, packet steering, and dynamic sharding logic. We have
//! no synthesis flow, so — per the substitution policy in DESIGN.md — we
//! reproduce Table 1 with a *structural* model whose constants are
//! calibrated to the paper's published numbers:
//!
//! * **Crossbars dominate** ("consistent with observations made in
//!   prior works \[dRMT\]"): a `k×k` crossbar of width `w` bits costs
//!   `k² · w · c_xbar`. One data crossbar (512-bit headers) and one
//!   phantom crossbar (48-bit phantoms) sit between consecutive stages.
//! * **FIFO SRAM**: each of the `k·s` stage instances has `k` lanes of
//!   `F = 8` entries holding 512-bit headers.
//! * **Steering/sharding logic**: linear in `k·s`.
//!
//! The paper's own scaling summary — "chip area increases linearly with
//! number of stages and quadratically ... with number of pipelines" —
//! is a property of this structure, and the unit tests assert both the
//! scaling laws and agreement with every Table 1 cell within 10 %.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The Table 1 values published in the paper, for validation and
/// side-by-side printing: `(k, s, mm²)`. Clock: all cells ≥ 1 GHz.
pub const PAPER_TABLE1: &[(usize, usize, f64)] = &[
    (2, 4, 0.21),
    (2, 8, 0.42),
    (2, 12, 0.63),
    (2, 16, 0.81),
    (4, 4, 0.84),
    (4, 8, 1.68),
    (4, 12, 2.52),
    (4, 16, 3.36),
    (8, 4, 3.2),
    (8, 8, 6.4),
    (8, 12, 9.6),
    (8, 16, 12.8),
];

/// Structural area/timing model of MP5's added hardware, calibrated to
/// the 15 nm NanGate results in Table 1.
#[derive(Debug, Clone)]
pub struct AsicModel {
    /// Data-packet header width in bits (paper: 512).
    pub data_header_bits: u32,
    /// Phantom packet width in bits (paper: 48).
    pub phantom_bits: u32,
    /// FIFO entries per lane (paper: 8).
    pub fifo_entries: u32,
    /// Crossbar area per (bit of width × port²), mm² — fitted.
    pub xbar_mm2_per_bit_port2: f64,
    /// SRAM area per bit, mm² (15 nm-class density).
    pub sram_mm2_per_bit: f64,
    /// Steering + sharding logic per pipeline-stage instance, mm².
    pub logic_mm2_per_instance: f64,
    /// Base combinational delay of a stage's critical path, ns.
    pub base_delay_ns: f64,
    /// Added delay per crossbar fan-in doubling (log₂ k), ns.
    pub xbar_delay_ns_per_level: f64,
}

impl Default for AsicModel {
    fn default() -> Self {
        AsicModel {
            data_header_bits: 512,
            phantom_bits: 48,
            fifo_entries: 8,
            // Fitted to Table 1: the k²·s coefficient is ≈ 0.0129 mm²;
            // FIFO SRAM contributes k²·s·8·512 bits at 15 nm density,
            // the rest is crossbar wiring/muxes.
            xbar_mm2_per_bit_port2: 2.25e-5,
            sram_mm2_per_bit: 5.0e-8,
            logic_mm2_per_instance: 2.0e-4,
            base_delay_ns: 0.70,
            xbar_delay_ns_per_level: 0.08,
        }
    }
}

impl AsicModel {
    /// Chip area (mm²) of MP5's added components for `k` pipelines and
    /// `s` stages.
    pub fn area_mm2(&self, k: usize, s: usize) -> f64 {
        let k2 = (k * k) as f64;
        let s_f = s as f64;
        let xbar_width = (self.data_header_bits + self.phantom_bits) as f64;
        let xbar = k2 * s_f * xbar_width * self.xbar_mm2_per_bit_port2;
        let fifo_bits = k2 * s_f * (self.fifo_entries as f64) * (self.data_header_bits as f64);
        let fifo = fifo_bits * self.sram_mm2_per_bit;
        let logic = (k as f64) * s_f * self.logic_mm2_per_instance;
        xbar + fifo + logic
    }

    /// Achievable clock frequency in GHz: the stage critical path plus
    /// the crossbar's log-depth arbitration/mux tree.
    pub fn clock_ghz(&self, k: usize) -> f64 {
        let levels = (k.max(1) as f64).log2();
        1.0 / (self.base_delay_ns + levels * self.xbar_delay_ns_per_level)
    }

    /// Whether the design meets the paper's 1 GHz target at `k`
    /// pipelines.
    pub fn meets_1ghz(&self, k: usize) -> bool {
        self.clock_ghz(k) >= 1.0
    }

    /// The largest power-of-two pipeline count that still meets 1 GHz —
    /// the §3.5.3 scalability limit of the crossbar.
    pub fn max_pipelines_at_1ghz(&self) -> usize {
        let mut k = 1;
        while self.meets_1ghz(k * 2) && k < 1 << 20 {
            k *= 2;
        }
        k
    }

    /// Sharding-metadata SRAM overhead in **bits per register index**:
    /// 6 (pipeline number) + 16 (access counter) + 8 (in-flight counter)
    /// = 30 bits (§4.2).
    pub fn sram_bits_per_index(&self) -> u32 {
        6 + 16 + 8
    }

    /// Total sharding-metadata SRAM per pipeline, in KB, for a program
    /// with `stateful_stages` stages of `entries_per_stage` register
    /// entries each (paper example: 10 × 1000 → ≈ 35 KB).
    pub fn sram_overhead_kb(&self, stateful_stages: usize, entries_per_stage: usize) -> f64 {
        let bits = (stateful_stages * entries_per_stage) as f64 * self.sram_bits_per_index() as f64;
        bits / 8.0 / 1024.0
    }

    /// Area as a fraction of a commercial switch ASIC (300–700 mm²,
    /// §4.2 cites dRMT): returns the (low, high) percentage range.
    pub fn area_overhead_percent(&self, k: usize, s: usize) -> (f64, f64) {
        let a = self.area_mm2(k, s);
        (a / 700.0 * 100.0, a / 300.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_every_paper_table1_cell_within_10_percent() {
        let m = AsicModel::default();
        for &(k, s, paper) in PAPER_TABLE1 {
            let ours = m.area_mm2(k, s);
            let err = (ours - paper).abs() / paper;
            assert!(
                err < 0.10,
                "k={k} s={s}: model {ours:.3} vs paper {paper:.3} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn area_scales_linearly_with_stages() {
        let m = AsicModel::default();
        let a4 = m.area_mm2(4, 4);
        let a8 = m.area_mm2(4, 8);
        let a16 = m.area_mm2(4, 16);
        assert!((a8 / a4 - 2.0).abs() < 0.01);
        assert!((a16 / a4 - 4.0).abs() < 0.01);
    }

    #[test]
    fn area_scales_quadratically_with_pipelines() {
        let m = AsicModel::default();
        let a2 = m.area_mm2(2, 8);
        let a4 = m.area_mm2(4, 8);
        let a8 = m.area_mm2(8, 8);
        // Quadratic up to the small linear logic term.
        assert!((a4 / a2 - 4.0).abs() < 0.15);
        assert!((a8 / a2 - 16.0).abs() < 0.6);
    }

    #[test]
    fn clock_meets_1ghz_through_8_pipelines() {
        let m = AsicModel::default();
        for k in [2, 4, 8] {
            assert!(m.meets_1ghz(k), "k={k} must meet 1 GHz (Table 1)");
        }
    }

    #[test]
    fn crossbar_eventually_limits_scaling() {
        let m = AsicModel::default();
        let max = m.max_pipelines_at_1ghz();
        assert!(
            (8..=32).contains(&max),
            "the §3.5.3 limit should appear soon after today's 8 pipelines, got {max}"
        );
        assert!(!m.meets_1ghz(max * 4));
    }

    #[test]
    fn sram_overhead_matches_paper_example() {
        let m = AsicModel::default();
        assert_eq!(m.sram_bits_per_index(), 30);
        let kb = m.sram_overhead_kb(10, 1000);
        assert!(
            (kb - 35.0).abs() < 2.0,
            "10 stages × 1000 entries should be ≈ 35 KB, got {kb:.1}"
        );
    }

    #[test]
    fn tofino_config_overhead_is_sub_percent() {
        // §4.2: 4 pipelines × 16 stages = 3.36 mm² on a 300–700 mm² die
        // is "only 0.5–1% overhead".
        let m = AsicModel::default();
        let (lo, hi) = m.area_overhead_percent(4, 16);
        assert!(lo > 0.4 && hi < 1.3, "got {lo:.2}%–{hi:.2}%");
    }

    #[test]
    fn eight_pipeline_overhead_is_2_to_4_percent() {
        let m = AsicModel::default();
        let (lo, hi) = m.area_overhead_percent(8, 16);
        assert!(lo > 1.5 && hi < 5.0, "got {lo:.2}%–{hi:.2}%");
    }
}
