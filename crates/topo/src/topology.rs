//! Topology descriptions and their validation.
//!
//! A [`TopologyConfig`] names the switches (by tier role), attaches
//! hosts to leaves, and lists the directed switch-to-switch links.
//! [`TopologyConfig::validate`] rejects structurally broken fabrics
//! with a typed [`TopoError`] — mirroring how `SwitchConfig::validate`
//! guards a single switch — and returns a [`Topology`]: the validated,
//! port-mapped form the fabric engine consumes.
//!
//! The first-class shape is the two-tier leaf–spine fabric
//! ([`TopologyConfig::leaf_spine`]); the explicit switch/link lists
//! keep the description general enough for multi-tier (fat-tree)
//! extensions without changing the on-disk or in-memory format.

use serde::Serialize;

/// Tier of a switch in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeRole {
    /// Top-of-rack switch; hosts attach here.
    Leaf,
    /// Aggregation switch; connects leaves to each other.
    Spine,
}

/// A fabric description: switches, host attachments, directed links.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// Switch tiers; the switch id is the index into this list.
    pub roles: Vec<NodeRole>,
    /// Host attachments; host id is the index, the value is the switch
    /// (must be a leaf) the host's NIC cables into.
    pub host_leaf: Vec<u32>,
    /// Directed switch-to-switch links `(from, to)`. A physical cable
    /// is two entries, one per direction; validation requires the
    /// reverse of every link to exist.
    pub links: Vec<(u32, u32)>,
    /// Oversubscription sanity bound: a leaf with more than
    /// `max_oversub` hosts per uplink is rejected as a config typo
    /// rather than simulated into meaningless congestion collapse.
    pub max_oversub: f64,
}

/// A structurally invalid [`TopologyConfig`], reported by
/// [`TopologyConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopoError {
    /// The switch list was empty.
    NoSwitches,
    /// No hosts are attached anywhere — the fabric has no traffic
    /// sources or sinks.
    NoHosts,
    /// A fabric needs at least one leaf (hosts attach only to leaves).
    NoLeaves,
    /// Two or more leaves but no spine to connect them.
    NoSpines,
    /// A host names a switch id outside `roles`.
    HostOnUnknownSwitch {
        /// The offending host.
        host: u32,
        /// The out-of-range switch id it names.
        switch_id: u32,
    },
    /// A host attaches to a spine; hosts terminate on leaves.
    HostOnSpine {
        /// The offending host.
        host: u32,
        /// The spine it tried to attach to.
        switch_id: u32,
    },
    /// A link endpoint names a switch id outside `roles`.
    LinkEndpointOutOfRange {
        /// Index of the offending link in `links`.
        link: usize,
        /// The out-of-range switch id.
        switch_id: u32,
    },
    /// A link connects a switch to itself.
    SelfLink {
        /// The switch with the self-loop.
        switch_id: u32,
    },
    /// The same directed link appears twice (a port-count mismatch: the
    /// port map would assign two ports to one neighbor).
    DuplicateLink {
        /// Link source.
        from: u32,
        /// Link destination.
        to: u32,
    },
    /// A directed link has no reverse — the fabric requires full-duplex
    /// cables (a link-count mismatch between the two directions).
    AsymmetricLink {
        /// Source of the unpaired link.
        from: u32,
        /// Destination of the unpaired link.
        to: u32,
    },
    /// Leaf–leaf or spine–spine links break the two-tier routing model.
    TierViolation {
        /// Link source.
        from: u32,
        /// Link destination.
        to: u32,
    },
    /// A switch with no links and no hosts — degree 0, unreachable.
    IsolatedSwitch {
        /// The isolated switch.
        switch_id: u32,
    },
    /// Two leaves share no spine, so traffic between their hosts has no
    /// path.
    NoPathBetweenLeaves {
        /// First leaf.
        from: u32,
        /// Second leaf.
        to: u32,
    },
    /// A leaf's hosts-per-uplink ratio exceeds `max_oversub`.
    Oversubscribed {
        /// The offending leaf.
        leaf: u32,
        /// Hosts attached to it.
        hosts: usize,
        /// Uplinks it has toward spines.
        uplinks: usize,
        /// The configured bound it exceeded.
        max: f64,
    },
    /// A switch needs more ports than `u16` (the packet `PortId` width)
    /// can address.
    PortOverflow {
        /// The offending switch.
        switch_id: u32,
        /// Ports it would need.
        ports: usize,
    },
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoError::NoSwitches => write!(f, "topology has no switches"),
            TopoError::NoHosts => write!(f, "topology has no hosts"),
            TopoError::NoLeaves => write!(f, "topology has no leaf switches"),
            TopoError::NoSpines => {
                write!(f, "multiple leaves but no spine to connect them")
            }
            TopoError::HostOnUnknownSwitch { host, switch_id } => {
                write!(f, "host {host} attaches to unknown switch {switch_id}")
            }
            TopoError::HostOnSpine { host, switch_id } => {
                write!(
                    f,
                    "host {host} attaches to spine {switch_id}; hosts terminate on leaves"
                )
            }
            TopoError::LinkEndpointOutOfRange { link, switch_id } => {
                write!(f, "link #{link} names unknown switch {switch_id}")
            }
            TopoError::SelfLink { switch_id } => {
                write!(f, "switch {switch_id} links to itself")
            }
            TopoError::DuplicateLink { from, to } => {
                write!(f, "duplicate link {from} -> {to}")
            }
            TopoError::AsymmetricLink { from, to } => {
                write!(f, "link {from} -> {to} has no reverse direction")
            }
            TopoError::TierViolation { from, to } => {
                write!(f, "link {from} -> {to} connects switches of the same tier")
            }
            TopoError::IsolatedSwitch { switch_id } => {
                write!(f, "switch {switch_id} has no links and no hosts (degree 0)")
            }
            TopoError::NoPathBetweenLeaves { from, to } => {
                write!(
                    f,
                    "leaves {from} and {to} share no spine; no path between their hosts"
                )
            }
            TopoError::Oversubscribed {
                leaf,
                hosts,
                uplinks,
                max,
            } => write!(
                f,
                "leaf {leaf}: {hosts} hosts over {uplinks} uplink(s) exceeds the \
                 {max}:1 oversubscription sanity bound"
            ),
            TopoError::PortOverflow { switch_id, ports } => {
                write!(
                    f,
                    "switch {switch_id} needs {ports} ports; PortId is 16-bit"
                )
            }
        }
    }
}

impl std::error::Error for TopoError {}

impl TopologyConfig {
    /// A full-mesh two-tier leaf–spine fabric: `leaves` leaf switches
    /// each carrying `hosts_per_leaf` hosts, every leaf cabled to every
    /// one of `spines` spine switches (both directions).
    pub fn leaf_spine(leaves: usize, spines: usize, hosts_per_leaf: usize) -> Self {
        let mut roles = vec![NodeRole::Leaf; leaves];
        roles.extend(std::iter::repeat_n(NodeRole::Spine, spines));
        let host_leaf = (0..leaves * hosts_per_leaf)
            .map(|h| (h / hosts_per_leaf) as u32)
            .collect();
        let mut links = Vec::with_capacity(leaves * spines * 2);
        for l in 0..leaves as u32 {
            for s in 0..spines as u32 {
                let spine_id = leaves as u32 + s;
                links.push((l, spine_id));
                links.push((spine_id, l));
            }
        }
        TopologyConfig {
            roles,
            host_leaf,
            links,
            max_oversub: 16.0,
        }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.roles.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.host_leaf.len()
    }

    /// Validates the description and builds the port-mapped
    /// [`Topology`]. Every structural error is reported as a typed
    /// [`TopoError`] (the first one found, in a deterministic order).
    pub fn validate(&self) -> Result<Topology, TopoError> {
        let n = self.roles.len() as u32;
        if n == 0 {
            return Err(TopoError::NoSwitches);
        }
        if self.host_leaf.is_empty() {
            return Err(TopoError::NoHosts);
        }
        let leaves: Vec<u32> = (0..n)
            .filter(|&s| self.roles[s as usize] == NodeRole::Leaf)
            .collect();
        let spines: Vec<u32> = (0..n)
            .filter(|&s| self.roles[s as usize] == NodeRole::Spine)
            .collect();
        if leaves.is_empty() {
            return Err(TopoError::NoLeaves);
        }
        if leaves.len() > 1 && spines.is_empty() {
            return Err(TopoError::NoSpines);
        }
        for (h, &sw) in self.host_leaf.iter().enumerate() {
            if sw >= n {
                return Err(TopoError::HostOnUnknownSwitch {
                    host: h as u32,
                    switch_id: sw,
                });
            }
            if self.roles[sw as usize] == NodeRole::Spine {
                return Err(TopoError::HostOnSpine {
                    host: h as u32,
                    switch_id: sw,
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (i, &(from, to)) in self.links.iter().enumerate() {
            for end in [from, to] {
                if end >= n {
                    return Err(TopoError::LinkEndpointOutOfRange {
                        link: i,
                        switch_id: end,
                    });
                }
            }
            if from == to {
                return Err(TopoError::SelfLink { switch_id: from });
            }
            if self.roles[from as usize] == self.roles[to as usize] {
                return Err(TopoError::TierViolation { from, to });
            }
            if !seen.insert((from, to)) {
                return Err(TopoError::DuplicateLink { from, to });
            }
        }
        for &(from, to) in &self.links {
            if !seen.contains(&(to, from)) {
                return Err(TopoError::AsymmetricLink { from, to });
            }
        }

        // Per-switch neighbor sets (sorted: the local port map is
        // hosts first, then neighbors in ascending switch id).
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for &(from, to) in &self.links {
            neighbors[from as usize].push(to);
        }
        for nb in &mut neighbors {
            nb.sort_unstable();
        }
        let mut hosts_of: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for (h, &sw) in self.host_leaf.iter().enumerate() {
            hosts_of[sw as usize].push(h as u32);
        }

        for s in 0..n {
            let degree = neighbors[s as usize].len() + hosts_of[s as usize].len();
            if degree == 0 {
                return Err(TopoError::IsolatedSwitch { switch_id: s });
            }
            let ports = neighbors[s as usize].len() + hosts_of[s as usize].len();
            if ports > u16::MAX as usize {
                return Err(TopoError::PortOverflow {
                    switch_id: s,
                    ports,
                });
            }
        }

        // Oversubscription sanity per leaf that actually carries hosts.
        for &l in &leaves {
            let hosts = hosts_of[l as usize].len();
            let uplinks = neighbors[l as usize].len();
            if hosts > 0 {
                if uplinks == 0 && leaves.len() > 1 {
                    // Hosts on this leaf can never reach the rest.
                    return Err(TopoError::IsolatedSwitch { switch_id: l });
                }
                if uplinks > 0 && hosts as f64 / uplinks as f64 > self.max_oversub {
                    return Err(TopoError::Oversubscribed {
                        leaf: l,
                        hosts,
                        uplinks,
                        max: self.max_oversub,
                    });
                }
            }
        }

        // Inter-leaf reachability: every leaf pair with hosts on both
        // sides needs a common spine.
        let mut spine_sets: Vec<Vec<u32>> = Vec::new();
        for &l in &leaves {
            spine_sets.push(
                neighbors[l as usize]
                    .iter()
                    .copied()
                    .filter(|&s| self.roles[s as usize] == NodeRole::Spine)
                    .collect(),
            );
        }
        for (i, &a) in leaves.iter().enumerate() {
            for (j, &b) in leaves.iter().enumerate().skip(i + 1) {
                if hosts_of[a as usize].is_empty() || hosts_of[b as usize].is_empty() {
                    continue;
                }
                let common = spine_sets[i].iter().any(|s| spine_sets[j].contains(s));
                if !common {
                    return Err(TopoError::NoPathBetweenLeaves { from: a, to: b });
                }
            }
        }

        Ok(Topology {
            cfg: self.clone(),
            leaves,
            spines,
            neighbors,
            hosts_of,
        })
    }
}

/// A validated, port-mapped topology (see [`TopologyConfig::validate`]).
///
/// Port layout per switch: ports `0..hosts` face the attached hosts (in
/// ascending host id), ports `hosts..hosts+neighbors` face neighbor
/// switches (in ascending switch id). The layout is a pure function of
/// the config, so every fabric run agrees on it.
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: TopologyConfig,
    /// Leaf switch ids, ascending.
    pub leaves: Vec<u32>,
    /// Spine switch ids, ascending.
    pub spines: Vec<u32>,
    /// Per switch: neighbor switch ids, ascending.
    pub neighbors: Vec<Vec<u32>>,
    /// Per switch: attached host ids, ascending.
    pub hosts_of: Vec<Vec<u32>>,
}

impl Topology {
    /// The config this topology was validated from.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.cfg.roles.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.cfg.host_leaf.len()
    }

    /// The tier of switch `s`.
    pub fn role(&self, s: u32) -> NodeRole {
        self.cfg.roles[s as usize]
    }

    /// The leaf switch host `h` attaches to.
    pub fn leaf_of_host(&self, h: u32) -> u32 {
        self.cfg.host_leaf[h as usize]
    }

    /// The local port on host `h`'s leaf that faces the host.
    pub fn host_port(&self, h: u32) -> u16 {
        let leaf = self.leaf_of_host(h);
        self.hosts_of[leaf as usize]
            .iter()
            .position(|&x| x == h)
            .expect("validated host is on its leaf") as u16
    }

    /// The local port on switch `s` that faces neighbor switch `to`.
    /// Panics if they are not adjacent (a fabric routing bug).
    pub fn neighbor_port(&self, s: u32, to: u32) -> u16 {
        let hosts = self.hosts_of[s as usize].len();
        let pos = self.neighbors[s as usize]
            .iter()
            .position(|&x| x == to)
            .unwrap_or_else(|| panic!("switches {s} and {to} are not adjacent"));
        (hosts + pos) as u16
    }

    /// Total ports on switch `s` (hosts + neighbors).
    pub fn ports(&self, s: u32) -> usize {
        self.hosts_of[s as usize].len() + self.neighbors[s as usize].len()
    }

    /// The spines adjacent to both `leaf_a` and `leaf_b` — the ECMP
    /// candidate set for traffic between them. Ascending switch id.
    pub fn common_spines(&self, leaf_a: u32, leaf_b: u32) -> Vec<u32> {
        self.neighbors[leaf_a as usize]
            .iter()
            .copied()
            .filter(|s| {
                self.role(*s) == NodeRole::Spine && self.neighbors[leaf_b as usize].contains(s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spine_constructor_validates() {
        let topo = TopologyConfig::leaf_spine(4, 2, 8).validate().unwrap();
        assert_eq!(topo.leaves, vec![0, 1, 2, 3]);
        assert_eq!(topo.spines, vec![4, 5]);
        assert_eq!(topo.num_hosts(), 32);
        // Leaf 1 carries hosts 8..16; its uplinks sit above them.
        assert_eq!(topo.leaf_of_host(9), 1);
        assert_eq!(topo.host_port(9), 1);
        assert_eq!(topo.neighbor_port(1, 4), 8);
        assert_eq!(topo.neighbor_port(4, 3), 3); // spines carry no hosts
        assert_eq!(topo.common_spines(0, 3), vec![4, 5]);
    }

    #[test]
    fn typed_errors_fire_in_order() {
        let empty = TopologyConfig {
            roles: vec![],
            host_leaf: vec![],
            links: vec![],
            max_oversub: 16.0,
        };
        assert_eq!(empty.validate().unwrap_err(), TopoError::NoSwitches);

        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.host_leaf = vec![];
        assert_eq!(t.validate().unwrap_err(), TopoError::NoHosts);

        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.host_leaf[0] = 99;
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::HostOnUnknownSwitch {
                host: 0,
                switch_id: 99
            }
        );

        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.host_leaf[3] = 2; // switch 2 is the spine
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::HostOnSpine {
                host: 3,
                switch_id: 2
            }
        );

        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.links.push((0, 2));
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::DuplicateLink { from: 0, to: 2 }
        );

        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.links.push((0, 1));
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::TierViolation { from: 0, to: 1 }
        );

        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.links.retain(|&(f, to)| !(f == 1 && to == 2));
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::AsymmetricLink { from: 2, to: 1 }
        );

        // Degree-0 switch: a spine nobody cables to.
        let mut t = TopologyConfig::leaf_spine(2, 1, 2);
        t.roles.push(NodeRole::Spine);
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::IsolatedSwitch { switch_id: 3 }
        );

        // Leaves that share no spine.
        let t = TopologyConfig {
            roles: vec![
                NodeRole::Leaf,
                NodeRole::Leaf,
                NodeRole::Spine,
                NodeRole::Spine,
            ],
            host_leaf: vec![0, 1],
            links: vec![(0, 2), (2, 0), (1, 3), (3, 1)],
            max_oversub: 16.0,
        };
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::NoPathBetweenLeaves { from: 0, to: 1 }
        );

        // Oversubscription sanity.
        let mut t = TopologyConfig::leaf_spine(2, 1, 40);
        t.max_oversub = 16.0;
        assert!(matches!(
            t.validate().unwrap_err(),
            TopoError::Oversubscribed {
                leaf: 0,
                hosts: 40,
                uplinks: 1,
                ..
            }
        ));

        let mut t = TopologyConfig::leaf_spine(2, 2, 2);
        t.links.push((0, 0));
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::SelfLink { switch_id: 0 }
        );

        let mut t = TopologyConfig::leaf_spine(2, 2, 2);
        t.links.push((0, 7));
        assert_eq!(
            t.validate().unwrap_err(),
            TopoError::LinkEndpointOutOfRange {
                link: t.links.len() - 1,
                switch_id: 7
            }
        );
    }

    #[test]
    fn single_leaf_fabric_needs_no_spine() {
        // One rack, intra-leaf traffic only: valid without spines.
        let t = TopologyConfig {
            roles: vec![NodeRole::Leaf],
            host_leaf: vec![0, 0],
            links: vec![],
            max_oversub: 16.0,
        };
        let topo = t.validate().unwrap();
        assert!(topo.spines.is_empty());
        assert_eq!(topo.ports(0), 2);
    }
}
