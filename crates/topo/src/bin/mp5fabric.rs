//! `mp5fabric` — deterministic leaf–spine fabric runs of composed MP5
//! switches.
//!
//! ```sh
//! cargo run --release -p mp5-topo --bin mp5fabric -- \
//!     [--app NAME] [--leaves N] [--spines N] [--hosts-per-leaf N] \
//!     [--flows N] [--seed N] [--load F] [--pkts-per-flow N] \
//!     [--pipelines K] [--engine seq|par|par:N] \
//!     [--routing ecmp|flowlet|flowlet:GAP] \
//!     [--incast FANIN[:PERIOD]] [--outcast FANOUT] \
//!     [--kill-spine IDX[@TICK]] [--link-cap N] [--link-latency N] \
//!     [--trace-dir DIR] [--audit] [--json FILE] [--verify-par] [--quiet]
//! ```
//!
//! Builds the requested topology, streams a seeded datacenter workload
//! (web-search flow sizes; optionally incast or outcast) through it,
//! and prints the [`FabricReport`]: delivery and drop ledger, flow
//! completion times, per-link utilization, and per-switch rows. The
//! run is bit-deterministic: same flags, same report, on either cycle
//! engine (`--verify-par` proves it by running both and comparing).
//!
//! `--trace-dir` writes each switch's event stream as
//! `DIR/sw<ID>.jsonl` for `mp5audit`; `--audit` runs the invariant
//! auditor in-process instead. Both force per-switch `MemSink`s, so
//! use them at smoke scale, not on million-flow runs.
//!
//! Exit status: 0 on a clean conserved run, 1 if the conservation
//! ledger fails to close, an audit finds violations, or `--verify-par`
//! detects divergence.

use mp5_core::{EngineMode, SwitchConfig};
use mp5_topo::{Fabric, FabricConfig, FabricReport, RouteMode, SpineKill, TopologyConfig};
use mp5_trace::{audit, MemSink, NopSink, TraceSink};
use mp5_traffic::{DcPattern, DcWorkload};

struct Cli {
    app: String,
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    flows: u64,
    seed: u64,
    load: f64,
    pkts_per_flow: u32,
    pipelines: usize,
    engine: EngineMode,
    routing: RouteMode,
    pattern: DcPattern,
    kill_spine: Option<(u32, u64)>,
    link_cap: usize,
    link_latency: u64,
    trace_dir: Option<String>,
    audit: bool,
    json: Option<String>,
    verify_par: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mp5fabric [--app NAME] [--leaves N] [--spines N] [--hosts-per-leaf N] \
         [--flows N] [--seed N] [--load F] [--pkts-per-flow N] [--pipelines K] \
         [--engine seq|par|par:N] [--routing ecmp|flowlet|flowlet:GAP] \
         [--incast FANIN[:PERIOD]] [--outcast FANOUT] [--kill-spine IDX[@TICK]] \
         [--link-cap N] [--link-latency N] [--trace-dir DIR] [--audit] \
         [--json FILE] [--verify-par] [--quiet]"
    );
    std::process::exit(2)
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        app: "heavy_hitter".into(),
        leaves: 2,
        spines: 2,
        hosts_per_leaf: 4,
        flows: 10_000,
        seed: 1,
        load: 0.8,
        pkts_per_flow: 64,
        pipelines: 4,
        engine: EngineMode::Sequential,
        routing: RouteMode::Ecmp,
        pattern: DcPattern::Uniform,
        kill_spine: None,
        link_cap: 64,
        link_latency: 512,
        trace_dir: None,
        audit: false,
        json: None,
        verify_par: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--app" => cli.app = val("--app"),
            "--leaves" => cli.leaves = val("--leaves").parse().unwrap_or_else(|_| usage()),
            "--spines" => cli.spines = val("--spines").parse().unwrap_or_else(|_| usage()),
            "--hosts-per-leaf" => {
                cli.hosts_per_leaf = val("--hosts-per-leaf").parse().unwrap_or_else(|_| usage())
            }
            "--flows" => cli.flows = val("--flows").parse().unwrap_or_else(|_| usage()),
            "--seed" => cli.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--load" => cli.load = val("--load").parse().unwrap_or_else(|_| usage()),
            "--pkts-per-flow" => {
                cli.pkts_per_flow = val("--pkts-per-flow").parse().unwrap_or_else(|_| usage())
            }
            "--pipelines" => cli.pipelines = val("--pipelines").parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                cli.engine = val("--engine").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--routing" => {
                cli.routing = val("--routing").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--incast" => {
                let v = val("--incast");
                let (fanin, period) = match v.split_once(':') {
                    Some((f, p)) => (
                        f.parse().unwrap_or_else(|_| usage()),
                        p.parse().unwrap_or_else(|_| usage()),
                    ),
                    None => (v.parse().unwrap_or_else(|_| usage()), 8),
                };
                cli.pattern = DcPattern::Incast { fanin, period };
            }
            "--outcast" => {
                cli.pattern = DcPattern::Outcast {
                    fanout: val("--outcast").parse().unwrap_or_else(|_| usage()),
                }
            }
            "--kill-spine" => {
                let v = val("--kill-spine");
                let (idx, tick) = match v.split_once('@') {
                    Some((i, t)) => (
                        i.parse().unwrap_or_else(|_| usage()),
                        t.parse().unwrap_or_else(|_| usage()),
                    ),
                    None => (v.parse().unwrap_or_else(|_| usage()), 1_000),
                };
                cli.kill_spine = Some((idx, tick));
            }
            "--link-cap" => cli.link_cap = val("--link-cap").parse().unwrap_or_else(|_| usage()),
            "--link-latency" => {
                cli.link_latency = val("--link-latency").parse().unwrap_or_else(|_| usage())
            }
            "--trace-dir" => cli.trace_dir = Some(val("--trace-dir")),
            "--audit" => cli.audit = true,
            "--json" => cli.json = Some(val("--json")),
            "--verify-par" => cli.verify_par = true,
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    cli
}

fn fabric_config(cli: &Cli, engine: EngineMode) -> FabricConfig {
    let mut cfg = FabricConfig::new(
        SwitchConfig::mp5(cli.pipelines)
            .with_hardware_fifos()
            .with_engine(engine),
    );
    cfg.link_capacity = cli.link_cap;
    cfg.link_latency = cli.link_latency;
    cfg.routing = cli.routing;
    cfg.seed = cli.seed;
    cfg.kill_spine = cli.kill_spine.map(|(idx, at_tick)| SpineKill {
        spine: cli.leaves as u32 + idx,
        at_tick,
    });
    cfg
}

fn run_once<S: TraceSink>(
    cli: &Cli,
    engine: EngineMode,
    mk_sink: impl FnMut(u32) -> S,
) -> (FabricReport, Vec<S>) {
    let app = mp5_apps::by_name(&cli.app).unwrap_or_else(|| {
        let names: Vec<&str> = mp5_apps::ALL_APPS.iter().map(|a| a.name).collect();
        eprintln!(
            "unknown app '{}' (try one of: {})",
            cli.app,
            names.join(", ")
        );
        std::process::exit(2)
    });
    let prog = app.compile().unwrap_or_else(|e| {
        eprintln!("app '{}' failed to compile: {e}", cli.app);
        std::process::exit(2)
    });
    let topo = TopologyConfig::leaf_spine(cli.leaves, cli.spines, cli.hosts_per_leaf)
        .validate()
        .unwrap_or_else(|e| {
            eprintln!("invalid topology: {e}");
            std::process::exit(2)
        });
    let hosts = topo.num_hosts();
    let workload = DcWorkload::new(hosts, cli.flows, cli.seed)
        .load(cli.load)
        .max_pkts_per_flow(cli.pkts_per_flow)
        .pattern(cli.pattern);
    let fabric = Fabric::with_hooks(
        topo,
        fabric_config(cli, engine),
        prog.clone(),
        mk_sink,
        |_| mp5_faults::NoFaults,
    )
    .unwrap_or_else(|e| {
        eprintln!("invalid fabric: {e}");
        std::process::exit(2)
    });
    let fill = app.fill;
    let run = fabric.run(workload.stream(), |key, rng, fields| {
        fill(&prog, key, rng, fields)
    });
    (run.report, run.sinks)
}

fn print_report(r: &FabricReport, cli: &Cli) {
    println!(
        "== mp5fabric ==  {}x{} leaf-spine, {} hosts/leaf, app {}, {} flows, seed {}",
        cli.leaves, cli.spines, cli.hosts_per_leaf, cli.app, cli.flows, cli.seed
    );
    println!(
        "ticks {}  horizon {}  injected {}  delivered {} ({:.2}%)",
        r.ticks,
        r.horizon,
        r.injected,
        r.delivered,
        100.0 * r.delivered_fraction()
    );
    println!(
        "drops: links {}  switch {}  no-route {}  to-dead {}  lost-in-dead {}",
        r.dropped_links, r.dropped_switch, r.dropped_no_route, r.dropped_to_dead, r.lost_in_dead
    );
    println!(
        "flows: started {}  completed {}  fct p50 {}  p99 {}  max {}  mean {:.0}",
        r.flows_started, r.fct.completed_flows, r.fct.p50, r.fct.p99, r.fct.max, r.fct.mean
    );
    let mut worst: Vec<&mp5_topo::LinkSummary> = r.links.iter().collect();
    worst.sort_by(|a, b| b.utilization.total_cmp(&a.utilization));
    for l in worst.iter().take(6) {
        println!(
            "link {:>3}  {:>7} -> {:<7}  util {:>5.1}%  delivered {:>8}  dropped {:>6}  maxq {}",
            l.id,
            l.from,
            l.to,
            100.0 * l.utilization,
            l.stats.delivered,
            l.stats.dropped,
            l.stats.max_queue
        );
    }
    for s in &r.switches {
        println!(
            "sw {:>3} {:?}{}  offered {:>9}  completed {:>9}  dropped {:>6}  steered {:>8}  ecn {:>6}",
            s.id,
            s.role,
            if s.dead { " DEAD" } else { "" },
            s.offered,
            s.completed,
            s.dropped,
            s.steered,
            s.ecn_marked
        );
    }
    println!(
        "conservation: {}  delivery digest {:#018x}",
        if r.conservation_closed() {
            "closed"
        } else {
            "VIOLATED"
        },
        r.delivery_digest
    );
}

fn main() {
    let cli = parse_cli();
    let mut failed = false;

    let traced = cli.trace_dir.is_some() || cli.audit;
    let (report, sinks) = if traced {
        run_once(&cli, cli.engine, |_| MemSink::new())
    } else {
        let (r, _) = run_once(&cli, cli.engine, |_| NopSink);
        (r, Vec::new())
    };

    if !cli.quiet {
        print_report(&report, &cli);
    }
    if !report.conservation_closed() {
        eprintln!("FAIL: conservation ledger did not close");
        failed = true;
    }

    if let Some(dir) = &cli.trace_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2)
        });
        for (i, sink) in sinks.iter().enumerate() {
            let path = format!("{dir}/sw{i}.jsonl");
            let mut out = String::new();
            for ev in &sink.events {
                out.push_str(&ev.to_jsonl());
                out.push('\n');
            }
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("cannot write trace to {path}: {e}");
                std::process::exit(2)
            }
        }
        if !cli.quiet {
            println!("traces: {} per-switch files under {dir}/", sinks.len());
        }
    }
    if cli.audit {
        for (i, sink) in sinks.iter().enumerate() {
            let rep = audit(&sink.events);
            if !rep.is_clean() {
                eprintln!(
                    "FAIL: audit of sw{i} found {} violation(s):",
                    rep.findings.len()
                );
                for f in rep.findings.iter().take(10) {
                    eprintln!("  {f:?}");
                }
                failed = true;
            }
        }
        if !failed && !cli.quiet {
            println!("audit: {} switches clean", sinks.len());
        }
    }

    if cli.verify_par {
        let other = match cli.engine {
            EngineMode::Sequential => EngineMode::parallel_auto(),
            EngineMode::Parallel(_) => EngineMode::Sequential,
        };
        let (other_report, _) = run_once(&cli, other, |_| NopSink);
        if other_report == report {
            if !cli.quiet {
                println!("verify-par: engines agree bit-for-bit");
            }
        } else {
            eprintln!("FAIL: sequential and parallel engines diverged");
            failed = true;
        }
    }

    if let Some(path) = &cli.json {
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2)
        });
        if !cli.quiet {
            println!("report: {path}");
        }
    }

    std::process::exit(if failed { 1 } else { 0 });
}
