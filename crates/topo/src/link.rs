//! Point-to-point links: bounded FIFO queues with serialization delay
//! and propagation latency.
//!
//! Every edge of the fabric — host→leaf, leaf→host, and each direction
//! of a switch-to-switch cable — is one [`Link`]. A link transmits one
//! byte per byte-time (the same line rate as a switch port), so a
//! packet of `size` bytes occupies the wire for `size` byte-times and
//! arrives `latency` byte-times after its last bit left. Packets that
//! find the bounded transmit queue full are dropped at the sender — the
//! fabric's only loss point outside the switches themselves, and the
//! one that fires under incast.

use std::collections::VecDeque;

use mp5_types::Packet;
use serde::Serialize;

/// Per-link counters reported in the
/// [`FabricReport`](crate::fabric::FabricReport).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LinkStats {
    /// Packets fully delivered to the far end.
    pub delivered: u64,
    /// Packets dropped on a full transmit queue.
    pub dropped: u64,
    /// Highest transmit-queue occupancy observed.
    pub max_queue: usize,
    /// Bytes serialized onto the wire.
    pub busy_bytes: u64,
}

impl LinkStats {
    /// Fraction of `horizon` byte-times the wire spent transmitting.
    pub fn utilization(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_bytes as f64 / horizon as f64).min(1.0)
        }
    }
}

/// One directed link. See the module docs for the timing model.
#[derive(Debug)]
pub struct Link {
    /// Propagation delay in byte-times.
    latency: u64,
    /// Transmit-queue bound in packets (the switch-port buffer).
    capacity: usize,
    /// Byte-time at which the wire frees up.
    busy_until: u64,
    /// In-flight packets: `(arrival at far end, packet)`, ascending.
    q: VecDeque<(u64, Packet)>,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    /// A link with the given transmit-queue `capacity` (packets) and
    /// propagation `latency` (byte-times).
    pub fn new(capacity: usize, latency: u64) -> Self {
        Link {
            latency,
            capacity,
            busy_until: 0,
            q: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    /// Offers `pkt` to the link at byte-time `now`. Returns `false`
    /// (and counts a drop) when the transmit queue is full.
    pub fn push(&mut self, now: u64, pkt: Packet) -> bool {
        if self.q.len() >= self.capacity {
            self.stats.dropped += 1;
            return false;
        }
        let start = self.busy_until.max(now);
        let ready = start + pkt.size as u64 + self.latency;
        self.busy_until = start + pkt.size as u64;
        self.stats.busy_bytes += pkt.size as u64;
        self.q.push_back((ready, pkt));
        if self.q.len() > self.stats.max_queue {
            self.stats.max_queue = self.q.len();
        }
        true
    }

    /// Pops the next packet whose far-end arrival is strictly before
    /// `before`, as `(arrival, packet)`. Arrivals pop in FIFO order
    /// (serialization makes them monotone).
    pub fn pop_ready(&mut self, before: u64) -> Option<(u64, Packet)> {
        if self.q.front().is_some_and(|&(ready, _)| ready < before) {
            self.stats.delivered += 1;
            return self.q.pop_front();
        }
        None
    }

    /// Drops everything still queued (link into a failed switch),
    /// returning how many packets were discarded.
    pub fn drop_all(&mut self) -> u64 {
        let n = self.q.len() as u64;
        self.stats.dropped += n;
        self.q.clear();
        n
    }

    /// Packets still in flight or queued.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_types::{PacketId, PortId};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet::new(PacketId(id), PortId(0), 0, size, 0)
    }

    #[test]
    fn serialization_and_latency_shape_arrivals() {
        let mut l = Link::new(8, 100);
        assert!(l.push(0, pkt(0, 64)));
        assert!(l.push(0, pkt(1, 64)));
        // First: starts at 0, last bit at 64, arrives 164. Second:
        // starts when the wire frees (64), arrives 228.
        assert!(l.pop_ready(164).is_none());
        let (a0, p0) = l.pop_ready(165).unwrap();
        assert_eq!((a0, p0.id.0), (164, 0));
        let (a1, p1) = l.pop_ready(1_000).unwrap();
        assert_eq!((a1, p1.id.0), (228, 1));
        assert!(l.is_empty());
        assert_eq!(l.stats.delivered, 2);
        assert_eq!(l.stats.busy_bytes, 128);
    }

    #[test]
    fn bounded_queue_drops_at_the_sender() {
        let mut l = Link::new(2, 0);
        assert!(l.push(0, pkt(0, 1_000)));
        assert!(l.push(0, pkt(1, 1_000)));
        assert!(!l.push(0, pkt(2, 1_000)));
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.max_queue, 2);
    }

    #[test]
    fn idle_wire_restarts_at_now() {
        let mut l = Link::new(8, 10);
        assert!(l.push(0, pkt(0, 64)));
        let _ = l.pop_ready(u64::MAX);
        // Wire idle since 64; a push at 500 starts at 500, not 64.
        assert!(l.push(500, pkt(1, 64)));
        let (a, _) = l.pop_ready(u64::MAX).unwrap();
        assert_eq!(a, 574);
    }

    #[test]
    fn drop_all_accounts_every_resident() {
        let mut l = Link::new(8, 0);
        for i in 0..5 {
            assert!(l.push(0, pkt(i, 64)));
        }
        assert_eq!(l.drop_all(), 5);
        assert!(l.is_empty());
        assert_eq!(l.stats.dropped, 5);
    }
}
