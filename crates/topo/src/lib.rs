//! # mp5-topo — deterministic multi-switch fabric simulation
//!
//! Composes many [`Mp5Switch`](mp5_core::Mp5Switch) instances into a
//! datacenter fabric and drives millions of flows through it under one
//! global clock. The crate has four layers:
//!
//! | module | contents |
//! |---|---|
//! | [`topology`] | [`TopologyConfig`] / [`Topology`]: leaf–spine (fat-tree-ready) graphs, host placement, validated with typed [`TopoError`]s |
//! | [`link`] | [`Link`]: bounded point-to-point queues with serialization delay and propagation latency |
//! | [`route`] | [`Router`]: deterministic per-flow ECMP and flowlet next-hop selection across spines |
//! | [`fabric`] | [`Fabric`]: the global cycle loop, conservation ledger, spine fail-stop, [`FabricReport`] |
//!
//! Determinism is the contract throughout: a fabric run is a pure
//! function of `(topology, config, program, workload)` — bit-identical
//! across repeats and across the sequential and parallel cycle engines.
//! The `mp5fabric` binary is the CLI front end; the workload comes from
//! [`mp5_traffic::dc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod link;
pub mod route;
pub mod topology;

pub use fabric::{
    Fabric, FabricConfig, FabricError, FabricReport, FabricRun, FctStats, LinkSummary, SpineKill,
    SwitchSummary,
};
pub use link::{Link, LinkStats};
pub use route::{RouteMode, Router};
pub use topology::{NodeRole, TopoError, Topology, TopologyConfig};
