//! The fabric engine: composed MP5 switches under one global clock.
//!
//! A [`Fabric`] instantiates one [`Mp5Switch`] per topology node, wires
//! every edge as a bounded [`Link`], and advances the whole system in
//! lockstep: each global *tick* is one switch cycle (`64·k` byte-times,
//! identical for every switch since they share a pipeline count).
//! Within a tick the phases run in a fixed order — fabric faults,
//! inject, deliver-to-hosts, collect link arrivals per switch, step
//! every switch, route every egress — and every per-phase iteration is
//! in ascending id order, so a fabric run is a pure function of
//! `(topology, config, program, workload)`: repeated runs and both
//! cycle engines (`EngineMode::Sequential` / `Parallel(n)`) produce
//! bit-identical [`FabricReport`]s.
//!
//! Scale: the workload arrives as a lazy [`DcPacket`] iterator (see
//! [`mp5_traffic::dc`]), per-switch reports run with `record_detail`
//! off, and per-packet bookkeeping lives only while a packet is in
//! flight — millions of flows stream through in bounded memory.
//!
//! Failure: [`FabricConfig::kill_spine`] fail-stops one spine mid-run.
//! Packets resident in the dead switch are written off against the
//! conservation ledger ([`FabricReport::conservation_closed`]), links
//! into it black-hole (counted), and routing excludes it — delivery
//! degrades to the surviving paths instead of collapsing.

use std::collections::HashMap;

use mp5_compiler::program::CompiledProgram;
use mp5_core::{ConfigError, EngineMode, EnginePool, Mp5Switch, RunReport, SwitchConfig};
use mp5_faults::{FaultInjector, NoFaults};
use mp5_trace::{NopSink, TraceSink};
use mp5_traffic::dc::DcPacket;
use mp5_traffic::streams::{stream_rng, stream_seed};
use mp5_types::time::cycle_len;
use mp5_types::{FlowKey, Packet, PacketId, PortId, Value};
use rand::rngs::SmallRng;
use serde::Serialize;

use crate::link::{Link, LinkStats};
use crate::route::{RouteMode, Router};
use crate::topology::{NodeRole, Topology};

/// Errors building a [`Fabric`].
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// The per-switch configuration was rejected by `mp5-core`.
    Config(ConfigError),
    /// [`FabricConfig::kill_spine`] names a switch id that does not
    /// exist in the topology or is not a spine.
    KillTargetNotASpine {
        /// The offending global switch id.
        switch: u32,
        /// Number of switches in the topology.
        switches: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid switch config: {e}"),
            Self::KillTargetNotASpine { switch, switches } => write!(
                f,
                "kill_spine targets switch {switch}, which is not a spine \
                 (topology has {switches} switches, spines come last)"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<ConfigError> for FabricError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// Fabric-level failure injection: fail-stop one spine at a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpineKill {
    /// Global switch id of the spine to kill (must be a spine).
    pub spine: u32,
    /// Global tick at which it goes dark.
    pub at_tick: u64,
}

/// Configuration of a [`Fabric`] run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Per-switch configuration template (pipelines, engine, FIFOs…).
    /// Every switch in the fabric is built from this; `record_detail`
    /// is forced off so fabric-scale runs stay O(registers) per switch.
    pub switch: SwitchConfig,
    /// Transmit-queue bound of every link, in packets.
    pub link_capacity: usize,
    /// Propagation latency of every link, in byte-times.
    pub link_latency: u64,
    /// Spine load-balancing policy.
    pub routing: RouteMode,
    /// Fabric seed: salts the ECMP hash and the field-fill RNG.
    pub seed: u64,
    /// Optional fail-stop of one spine mid-run.
    pub kill_spine: Option<SpineKill>,
    /// Ticks without any global progress before the run is declared
    /// live-locked (a fabric bug) and panics with diagnostics.
    pub stall_limit: u64,
}

impl FabricConfig {
    /// Defaults: the given switch template, 64-packet link queues,
    /// 512 byte-times of link latency, per-flow ECMP, seed 0.
    pub fn new(switch: SwitchConfig) -> Self {
        FabricConfig {
            switch,
            link_capacity: 64,
            link_latency: 512,
            routing: RouteMode::Ecmp,
            seed: 0,
            kill_spine: None,
            stall_limit: 200_000,
        }
    }
}

/// Where a link terminates.
#[derive(Debug, Clone, Copy)]
enum LinkDst {
    /// Far end is switch `sw`, local ingress port `port`.
    Switch { sw: u32, port: u16 },
    /// Far end is a host NIC (delivery point).
    Host,
}

/// Per-packet state kept only while the packet is in flight.
#[derive(Debug, Clone, Copy)]
struct PktMeta {
    flow_id: u64,
    dst_host: u32,
}

/// Per-flow completion state, kept from first injection to completion.
#[derive(Debug, Clone, Copy)]
struct FlowState {
    started_at: u64,
    delivered: u32,
    /// Total packets in the flow, learned from the `last` packet.
    total: Option<u32>,
}

/// Flow-completion-time statistics over completed flows, in byte-times.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FctStats {
    /// Flows that delivered every packet.
    pub completed_flows: u64,
    /// Median FCT.
    pub p50: u64,
    /// 99th-percentile FCT.
    pub p99: u64,
    /// Maximum FCT.
    pub max: u64,
    /// Mean FCT.
    pub mean: f64,
}

impl FctStats {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return FctStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let sum: u64 = samples.iter().sum();
        FctStats {
            completed_flows: n as u64,
            p50: samples[n / 2],
            p99: samples[(n * 99) / 100],
            max: samples[n - 1],
            mean: sum as f64 / n as f64,
        }
    }
}

/// One link's row in the [`FabricReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkSummary {
    /// Link id (the fixed advance order).
    pub id: u32,
    /// Human-readable source (`hostN` or `swN`).
    pub from: String,
    /// Human-readable destination.
    pub to: String,
    /// Counters.
    pub stats: LinkStats,
    /// Fraction of the run the wire spent transmitting.
    pub utilization: f64,
}

/// One switch's row in the [`FabricReport`] — the serializable digest
/// of its [`RunReport`] (the full reports ride along in [`FabricRun`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SwitchSummary {
    /// Global switch id.
    pub id: u32,
    /// Tier.
    pub role: NodeRole,
    /// True if the fabric fail-stopped this switch.
    pub dead: bool,
    /// Packets offered to its ingress.
    pub offered: u64,
    /// Packets it processed to completion.
    pub completed: u64,
    /// Data packets it dropped internally.
    pub dropped: u64,
    /// Cycles it ran.
    pub cycles: u64,
    /// Packets steered across pipelines.
    pub steered: u64,
    /// Phantoms generated.
    pub phantoms: u64,
    /// Peak stage-FIFO occupancy.
    pub max_queue_depth: usize,
    /// Dynamic-sharding migrations.
    pub remap_moves: u64,
    /// Packets ECN-marked inside this switch.
    pub ecn_marked: u64,
}

impl SwitchSummary {
    fn new(id: u32, role: NodeRole, dead: bool, r: &RunReport) -> Self {
        SwitchSummary {
            id,
            role,
            dead,
            offered: r.offered,
            completed: r.completed,
            dropped: r.drops.total_data(),
            cycles: r.cycles,
            steered: r.steered,
            phantoms: r.phantoms_generated,
            max_queue_depth: r.max_queue_depth,
            remap_moves: r.remap_moves,
            ecn_marked: r.ecn_marked,
        }
    }
}

/// Everything a fabric run produces. `PartialEq` compares every field —
/// the equality the fabric equivalence suite uses to assert that the
/// sequential and parallel engines (and repeated runs) are
/// bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FabricReport {
    /// Global ticks simulated.
    pub ticks: u64,
    /// Byte-times simulated (`ticks · 64·k`).
    pub horizon: u64,
    /// Packets injected by the workload.
    pub injected: u64,
    /// Packets delivered to their destination host.
    pub delivered: u64,
    /// Packets dropped on full link queues (hosts and switch ports).
    pub dropped_links: u64,
    /// Data packets dropped inside switches.
    pub dropped_switch: u64,
    /// Packets dropped because no live path existed to their leaf.
    pub dropped_no_route: u64,
    /// Packets black-holed on links into a failed switch.
    pub dropped_to_dead: u64,
    /// Packets resident in a switch when the fabric fail-stopped it.
    pub lost_in_dead: u64,
    /// Flows that injected at least one packet.
    pub flows_started: u64,
    /// Flow-completion-time statistics over fully delivered flows.
    pub fct: FctStats,
    /// Per-link rows, in link-id order.
    pub links: Vec<LinkSummary>,
    /// Per-switch rows, in switch-id order.
    pub switches: Vec<SwitchSummary>,
    /// FNV-1a fold of every delivery `(packet id, time, host)` in
    /// order — a compact bit-identity fingerprint of the run.
    pub delivery_digest: u64,
}

impl FabricReport {
    /// The conservation ledger: every injected packet is delivered or
    /// accounted to exactly one drop cause.
    pub fn conservation_closed(&self) -> bool {
        self.injected
            == self.delivered
                + self.dropped_links
                + self.dropped_switch
                + self.dropped_no_route
                + self.dropped_to_dead
                + self.lost_in_dead
    }

    /// Fraction of injected packets delivered.
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FabricReport serializes")
    }
}

/// A finished fabric run: the fabric-level report plus each switch's
/// full [`RunReport`] and [`TraceSink`], in switch-id order.
pub struct FabricRun<S> {
    /// The fabric-level report.
    pub report: FabricReport,
    /// Per-switch run reports (index = switch id).
    pub switch_reports: Vec<RunReport>,
    /// Per-switch trace sinks (index = switch id).
    pub sinks: Vec<S>,
}

/// Running fabric-level counters; folded into the final report.
struct Ledger {
    injected: u64,
    delivered: u64,
    dropped_no_route: u64,
    dropped_to_dead: u64,
    lost_in_dead: u64,
    flows_started: u64,
    digest: u64,
}

impl Ledger {
    fn new() -> Self {
        Ledger {
            injected: 0,
            delivered: 0,
            dropped_no_route: 0,
            dropped_to_dead: 0,
            lost_in_dead: 0,
            flows_started: 0,
            digest: FNV_OFFSET,
        }
    }
}

/// The composed multi-switch fabric. Generic over the same zero-cost
/// [`TraceSink`] / [`FaultInjector`] hooks as a single [`Mp5Switch`];
/// each switch gets its own sink and injector from the factories passed
/// to [`Fabric::with_hooks`], so `mp5audit` consumes a per-switch event
/// stream unchanged and chaos plans target individual switches.
pub struct Fabric<S: TraceSink = NopSink, F: FaultInjector = NoFaults> {
    topo: Topology,
    cfg: FabricConfig,
    clen: u64,
    switches: Vec<Mp5Switch<S, F>>,
    links: Vec<Link>,
    link_label: Vec<(String, String)>,
    /// Host → its uplink / downlink link ids.
    host_up: Vec<u32>,
    host_down: Vec<u32>,
    /// Per switch: incoming link id for each local ingress port.
    in_links: Vec<Vec<u32>>,
    /// Per switch: neighbor position → outgoing link id.
    out_links: Vec<Vec<u32>>,
    router: Router,
    dead: Vec<bool>,
}

impl Fabric<NopSink, NoFaults> {
    /// An untraced, fault-free fabric.
    pub fn new(
        topo: Topology,
        cfg: FabricConfig,
        prog: CompiledProgram,
    ) -> Result<Self, FabricError> {
        Self::with_hooks(topo, cfg, prog, |_| NopSink, |_| NoFaults)
    }
}

impl<S: TraceSink, F: FaultInjector> Fabric<S, F> {
    /// A fabric whose switch `i` records into `mk_sink(i)` and runs
    /// under the fault injector `mk_faults(i)`.
    pub fn with_hooks(
        topo: Topology,
        cfg: FabricConfig,
        prog: CompiledProgram,
        mut mk_sink: impl FnMut(u32) -> S,
        mut mk_faults: impl FnMut(u32) -> F,
    ) -> Result<Self, FabricError> {
        let n = topo.num_switches();
        if let Some(kill) = cfg.kill_spine {
            let id = kill.spine;
            if id as usize >= n || topo.role(id) != NodeRole::Spine {
                return Err(FabricError::KillTargetNotASpine {
                    switch: id,
                    switches: n,
                });
            }
        }
        let swcfg = cfg.switch.clone().with_record_detail(false);
        // One worker pool serves every switch: the global loop steps
        // switches one at a time, so per-switch pools would idle.
        let pool = match swcfg.engine {
            EngineMode::Parallel(_) => {
                Some(EnginePool::new(swcfg.engine.workers_for(swcfg.pipelines)))
            }
            EngineMode::Sequential => None,
        };
        let mut switches = Vec::with_capacity(n);
        for s in 0..n as u32 {
            let sw = match &pool {
                Some(p) => Mp5Switch::try_with_pool(
                    prog.clone(),
                    swcfg.clone(),
                    mk_sink(s),
                    mk_faults(s),
                    p,
                )?,
                None => Mp5Switch::try_with_faults(
                    prog.clone(),
                    swcfg.clone(),
                    mk_sink(s),
                    mk_faults(s),
                )?,
            };
            switches.push(sw);
        }

        // Link construction, in the fixed global order: per host an
        // uplink and a downlink, then per switch (ascending), per
        // neighbor (ascending) the switch→neighbor link.
        let hosts = topo.num_hosts();
        let mut links = Vec::new();
        let mut link_dst = Vec::new();
        let mut link_label = Vec::new();
        let mut host_up = Vec::with_capacity(hosts);
        let mut host_down = Vec::with_capacity(hosts);
        for h in 0..hosts as u32 {
            let leaf = topo.leaf_of_host(h);
            host_up.push(links.len() as u32);
            links.push(Link::new(cfg.link_capacity, cfg.link_latency));
            link_dst.push(LinkDst::Switch {
                sw: leaf,
                port: topo.host_port(h),
            });
            link_label.push((format!("host{h}"), format!("sw{leaf}")));
            host_down.push(links.len() as u32);
            links.push(Link::new(cfg.link_capacity, cfg.link_latency));
            link_dst.push(LinkDst::Host);
            link_label.push((format!("sw{leaf}"), format!("host{h}")));
        }
        let mut out_links: Vec<Vec<u32>> = vec![Vec::new(); n];
        for s in 0..n as u32 {
            for &nb in &topo.neighbors[s as usize] {
                out_links[s as usize].push(links.len() as u32);
                links.push(Link::new(cfg.link_capacity, cfg.link_latency));
                link_dst.push(LinkDst::Switch {
                    sw: nb,
                    port: topo.neighbor_port(nb, s),
                });
                link_label.push((format!("sw{s}"), format!("sw{nb}")));
            }
        }
        // Invert: incoming link per (switch, ingress port).
        let mut in_links: Vec<Vec<u32>> = (0..n)
            .map(|s| vec![u32::MAX; topo.ports(s as u32)])
            .collect();
        for (id, dst) in link_dst.iter().enumerate() {
            if let LinkDst::Switch { sw, port } = *dst {
                in_links[sw as usize][port as usize] = id as u32;
            }
        }
        debug_assert!(in_links.iter().flatten().all(|&l| l != u32::MAX));

        let clen = cycle_len(swcfg.physical_pipelines.unwrap_or(swcfg.pipelines));
        let salt = stream_seed(cfg.seed, 0x5a17);
        Ok(Fabric {
            dead: vec![false; n],
            router: Router::new(cfg.routing, salt),
            topo,
            cfg,
            clen,
            switches,
            links,
            link_label,
            host_up,
            host_down,
            in_links,
            out_links,
        })
    }

    /// The validated topology this fabric was built from.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Byte-times per global tick (`64·k`).
    pub fn tick_len(&self) -> u64 {
        self.clen
    }

    /// Drives `workload` through the fabric to completion. `fill`
    /// populates each injected packet's header fields from its flow key
    /// (same contract as `mp5_apps::AppSpec::fill`).
    pub fn run<W, G>(mut self, workload: W, mut fill: G) -> FabricRun<S>
    where
        W: IntoIterator<Item = DcPacket>,
        G: FnMut(&FlowKey, &mut SmallRng, &mut [Value]),
    {
        let clen = self.clen;
        let nfields = self.switches[0].program().num_fields();
        // Field-fill stream: far away from the per-host workload
        // streams (0..hosts) even when fabric and workload share seeds.
        let mut fill_rng = stream_rng(self.cfg.seed, u64::MAX - 0xF111);
        let mut stream = workload.into_iter();
        let mut pending: Option<DcPacket> = None;
        let mut exhausted = false;

        let mut meta_map: HashMap<u64, PktMeta> = HashMap::new();
        let mut flow_state: HashMap<u64, FlowState> = HashMap::new();
        let mut fcts: Vec<u64> = Vec::new();
        let mut ledger = Ledger::new();
        let mut next_id = 0u64;
        let mut tick = 0u64;
        let mut last_progress = (0u64, u64::MAX);
        let mut inbox: Vec<(u64, u16, Packet)> = Vec::new();

        loop {
            let t_end = (tick + 1) * clen;

            // Phase 0: fabric-level faults (fail-stop a spine).
            if let Some(kill) = self.cfg.kill_spine {
                if kill.at_tick == tick && !self.dead[kill.spine as usize] {
                    assert_eq!(
                        self.topo.role(kill.spine),
                        NodeRole::Spine,
                        "kill_spine targets switch {} which is not a spine",
                        kill.spine
                    );
                    self.dead[kill.spine as usize] = true;
                    let r = self.switches[kill.spine as usize].live_report();
                    ledger.lost_in_dead += r.offered - r.completed - r.drops.total_data();
                }
            }

            // Phase 1: inject this tick's workload arrivals at the
            // source hosts' NICs.
            while !exhausted {
                let p = match pending.take().or_else(|| stream.next()) {
                    Some(p) => p,
                    None => {
                        exhausted = true;
                        break;
                    }
                };
                if p.arrival >= t_end {
                    pending = Some(p);
                    break;
                }
                ledger.injected += 1;
                let fs = flow_state.entry(p.flow_id).or_insert_with(|| {
                    ledger.flows_started += 1;
                    FlowState {
                        started_at: p.arrival,
                        delivered: 0,
                        total: None,
                    }
                });
                if p.last {
                    fs.total = Some(p.seq + 1);
                }
                let mut pkt = Packet::new(PacketId(next_id), PortId(0), p.arrival, p.size, nfields);
                next_id += 1;
                fill(&p.key, &mut fill_rng, &mut pkt.fields);
                let id = pkt.id.0;
                let up = self.host_up[p.src_host as usize] as usize;
                if self.links[up].push(p.arrival, pkt) {
                    meta_map.insert(
                        id,
                        PktMeta {
                            flow_id: p.flow_id,
                            dst_host: p.dst_host,
                        },
                    );
                }
                // On NIC-queue overflow the link counted the drop and
                // the packet never becomes in-flight state.
            }

            // Phase 2: deliveries to hosts (ascending host id).
            for h in 0..self.host_down.len() {
                let down = self.host_down[h] as usize;
                while let Some((at, pkt)) = self.links[down].pop_ready(t_end) {
                    let meta = meta_map
                        .remove(&pkt.id.0)
                        .expect("delivered packet has in-flight metadata");
                    ledger.delivered += 1;
                    ledger.digest = fold(ledger.digest, pkt.id.0);
                    ledger.digest = fold(ledger.digest, at);
                    ledger.digest = fold(ledger.digest, meta.dst_host as u64);
                    if let Some(fs) = flow_state.get_mut(&meta.flow_id) {
                        fs.delivered += 1;
                        if fs.total == Some(fs.delivered) {
                            fcts.push(at.saturating_sub(fs.started_at));
                            flow_state.remove(&meta.flow_id);
                        }
                    }
                }
            }

            // Phase 3: per switch (ascending id), collect link arrivals
            // and offer them in `(arrival, port)` order.
            for s in 0..self.switches.len() {
                if self.dead[s] {
                    // Black hole: arrivals into a dead switch are lost.
                    for port in 0..self.in_links[s].len() {
                        let l = self.in_links[s][port] as usize;
                        while let Some((_, pkt)) = self.links[l].pop_ready(t_end) {
                            ledger.dropped_to_dead += 1;
                            meta_map.remove(&pkt.id.0);
                        }
                    }
                    continue;
                }
                inbox.clear();
                for port in 0..self.in_links[s].len() {
                    let l = self.in_links[s][port] as usize;
                    while let Some((at, pkt)) = self.links[l].pop_ready(t_end) {
                        inbox.push((at, port as u16, pkt));
                    }
                }
                inbox.sort_by_key(|&(at, port, _)| (at, port));
                for (at, port, mut pkt) in inbox.drain(..) {
                    pkt.arrival = at;
                    pkt.port = PortId(port);
                    self.switches[s].offer(pkt);
                }
            }

            // Phase 4: step every live switch one cycle.
            for s in 0..self.switches.len() {
                if !self.dead[s] {
                    self.switches[s].tick();
                }
            }

            // Phase 5: route egress onto next-hop links (ascending id;
            // completion order within a switch).
            for s in 0..self.switches.len() as u32 {
                if self.dead[s as usize] {
                    continue;
                }
                for (pkt, _cycle) in self.switches[s as usize].drain_egress() {
                    let id = pkt.id.0;
                    let meta = *meta_map
                        .get(&id)
                        .expect("egress packet has in-flight metadata");
                    self.route_one(s, pkt, meta, t_end, &mut ledger, &mut meta_map);
                }
            }

            tick += 1;

            // Global progress: any counter movement anywhere. A live
            // switch grinding through its backlog always moves one of
            // these within a bounded number of ticks.
            let progress = ledger.injected
                + ledger.delivered
                + ledger.dropped_to_dead
                + ledger.dropped_no_route
                + self
                    .links
                    .iter()
                    .map(|l| l.stats.delivered + l.stats.dropped)
                    .sum::<u64>()
                + self
                    .switches
                    .iter()
                    .map(|sw| {
                        let r = sw.live_report();
                        r.completed + r.drops.total_data()
                    })
                    .sum::<u64>();
            if progress != last_progress.1 {
                last_progress = (tick, progress);
            } else if tick - last_progress.0 > self.cfg.stall_limit {
                panic!(
                    "fabric live-locked: no progress for {} ticks (tick {tick}, \
                     {} packets in flight, {} link residents)",
                    self.cfg.stall_limit,
                    meta_map.len(),
                    self.links.iter().map(Link::len).sum::<usize>()
                );
            }

            let done = exhausted
                && pending.is_none()
                && self.links.iter().all(Link::is_empty)
                && self
                    .switches
                    .iter()
                    .enumerate()
                    .all(|(s, sw)| self.dead[s] || sw.is_idle());
            if done {
                break;
            }
        }

        self.finish(tick, ledger, fcts, meta_map)
    }

    /// Routes one egress packet of switch `s` (see phase 5): forced
    /// down-path at spines, host port or ECMP/flowlet spine pick at
    /// leaves. Pushes onto the chosen link at byte-time `now`; drops
    /// (and closes the ledger) when no live route exists or the link
    /// queue is full.
    fn route_one(
        &mut self,
        s: u32,
        mut pkt: Packet,
        meta: PktMeta,
        now: u64,
        ledger: &mut Ledger,
        meta_map: &mut HashMap<u64, PktMeta>,
    ) {
        let dst_leaf = self.topo.leaf_of_host(meta.dst_host);
        let link = match self.topo.role(s) {
            NodeRole::Leaf if dst_leaf == s => self.host_down[meta.dst_host as usize],
            NodeRole::Leaf => {
                let candidates: Vec<u32> = self
                    .topo
                    .common_spines(s, dst_leaf)
                    .into_iter()
                    .filter(|&sp| !self.dead[sp as usize])
                    .collect();
                if candidates.is_empty() {
                    ledger.dropped_no_route += 1;
                    meta_map.remove(&pkt.id.0);
                    return;
                }
                let spine = self.router.pick_spine(s, meta.flow_id, now, &candidates);
                let pos = self.topo.neighbors[s as usize]
                    .iter()
                    .position(|&x| x == spine)
                    .expect("candidate spine is a neighbor");
                self.out_links[s as usize][pos]
            }
            NodeRole::Spine => {
                if self.dead[dst_leaf as usize] {
                    ledger.dropped_no_route += 1;
                    meta_map.remove(&pkt.id.0);
                    return;
                }
                let pos = self.topo.neighbors[s as usize]
                    .iter()
                    .position(|&x| x == dst_leaf)
                    .expect("spine egress goes to an adjacent leaf");
                self.out_links[s as usize][pos]
            }
        };
        let id = pkt.id.0;
        // The next hop re-times the packet on arrival; reset so stale
        // ingress timing cannot leak through.
        pkt.arrival = now;
        if !self.links[link as usize].push(now, pkt) {
            // The link counted the queue-overflow drop; forget the
            // packet so the fabric ledger closes.
            meta_map.remove(&id);
        }
    }

    /// Finalizes every switch and assembles the report.
    fn finish(
        self,
        ticks: u64,
        ledger: Ledger,
        fcts: Vec<u64>,
        meta_map: HashMap<u64, PktMeta>,
    ) -> FabricRun<S> {
        let Fabric {
            topo,
            clen,
            switches,
            links,
            link_label,
            dead,
            ..
        } = self;
        let horizon = ticks * clen;
        let mut switch_reports = Vec::with_capacity(switches.len());
        let mut sinks = Vec::with_capacity(switches.len());
        let mut switch_rows = Vec::with_capacity(switches.len());
        for (i, sw) in switches.into_iter().enumerate() {
            let (rep, sink) = sw.finish_stream();
            switch_rows.push(SwitchSummary::new(
                i as u32,
                topo.role(i as u32),
                dead[i],
                &rep,
            ));
            switch_reports.push(rep);
            sinks.push(sink);
        }
        let dropped_switch: u64 = switch_reports.iter().map(|r| r.drops.total_data()).sum();
        let dropped_links: u64 = links.iter().map(|l| l.stats.dropped).sum();
        let link_rows = links
            .iter()
            .enumerate()
            .map(|(id, l)| LinkSummary {
                id: id as u32,
                from: link_label[id].0.clone(),
                to: link_label[id].1.clone(),
                stats: l.stats.clone(),
                utilization: l.stats.utilization(horizon),
            })
            .collect();
        let report = FabricReport {
            ticks,
            horizon,
            injected: ledger.injected,
            delivered: ledger.delivered,
            dropped_links,
            dropped_switch,
            dropped_no_route: ledger.dropped_no_route,
            dropped_to_dead: ledger.dropped_to_dead,
            lost_in_dead: ledger.lost_in_dead,
            flows_started: ledger.flows_started,
            fct: FctStats::from_samples(fcts),
            links: link_rows,
            switches: switch_rows,
            delivery_digest: ledger.digest,
        };
        // Cross-check: the in-flight table must hold exactly the
        // packets written off inside switches (dropped there or lost in
        // a fail-stop) — everything else was removed on its way out.
        debug_assert_eq!(
            meta_map.len() as u64,
            dropped_switch + ledger.lost_in_dead,
            "in-flight metadata does not match the drop ledger"
        );
        FabricRun {
            report,
            switch_reports,
            sinks,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}
