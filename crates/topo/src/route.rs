//! Next-hop selection: ECMP and flowlet load balancing across spines.
//!
//! Routing in a two-tier fabric has exactly one interesting decision:
//! which spine carries a flow from its source leaf to its destination
//! leaf (everything else — host port, down-path — is forced by the
//! topology). [`Router`] makes that decision deterministically:
//!
//! * [`RouteMode::Ecmp`]: a seeded FNV-1a hash of the flow id pins each
//!   flow to one spine for its lifetime (classic per-flow ECMP).
//! * [`RouteMode::Flowlet`]: bursts of one flow separated by more than
//!   `gap` byte-times may take different spines — the paper's flowlet
//!   application, lifted to the fabric layer. The hash folds in the
//!   flowlet epoch so consecutive flowlets decorrelate.
//!
//! Either way the choice is a pure function of `(seed, flow, time,
//! candidate set)`, so repeated runs and both cycle engines agree.

use std::collections::HashMap;

/// How flows are spread across the spines between a leaf pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteMode {
    /// Per-flow ECMP: one spine per flow, for the flow's lifetime.
    Ecmp,
    /// Flowlet switching: idle gaps longer than `gap` byte-times allow
    /// a flow's next burst to re-pick its spine.
    Flowlet {
        /// Minimum idle time (byte-times) that splits two flowlets.
        gap: u64,
    },
}

impl std::str::FromStr for RouteMode {
    type Err = String;

    /// Parses the `mp5fabric --routing` spellings: `ecmp`, `flowlet`
    /// (50 µs-ish default gap), or `flowlet:GAP`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ecmp" => Ok(RouteMode::Ecmp),
            "flowlet" => Ok(RouteMode::Flowlet { gap: 50_000 }),
            other => match other.strip_prefix("flowlet:") {
                Some(g) => match g.parse::<u64>() {
                    Ok(gap) if gap > 0 => Ok(RouteMode::Flowlet { gap }),
                    _ => Err(format!("invalid flowlet gap '{g}' (need an integer >= 1)")),
                },
                None => Err(format!(
                    "unknown routing mode '{other}' (expected ecmp, flowlet, or flowlet:GAP)"
                )),
            },
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The fabric's next-hop selector. One instance serves every leaf; the
/// flowlet table is keyed by `(leaf, flow)` so leaves stay independent.
#[derive(Debug)]
pub struct Router {
    mode: RouteMode,
    salt: u64,
    /// Flowlet state: `(leaf, flow) -> (last packet time, chosen spine)`.
    flowlet: HashMap<(u32, u64), (u64, u32)>,
}

impl Router {
    /// A router with the given mode and hash salt (derive the salt from
    /// the fabric seed so reruns are identical).
    pub fn new(mode: RouteMode, salt: u64) -> Self {
        Router {
            mode,
            salt,
            flowlet: HashMap::new(),
        }
    }

    /// Picks the spine carrying `flow` out of `leaf` at byte-time
    /// `now`, from the non-empty `candidates` slice (common spines of
    /// the leaf pair, minus any the fabric marked dead).
    pub fn pick_spine(&mut self, leaf: u32, flow: u64, now: u64, candidates: &[u32]) -> u32 {
        debug_assert!(!candidates.is_empty());
        if candidates.len() == 1 {
            return candidates[0];
        }
        match self.mode {
            RouteMode::Ecmp => {
                let h = fnv1a(&[self.salt, flow]);
                candidates[(h % candidates.len() as u64) as usize]
            }
            RouteMode::Flowlet { gap } => {
                let key = (leaf, flow);
                if let Some(&(last, spine)) = self.flowlet.get(&key) {
                    if now.saturating_sub(last) <= gap && candidates.contains(&spine) {
                        self.flowlet.insert(key, (now, spine));
                        return spine;
                    }
                }
                // New flowlet: fold the epoch in so consecutive
                // flowlets of one flow can land on different spines.
                let h = fnv1a(&[self.salt, flow, now / gap.max(1)]);
                let spine = candidates[(h % candidates.len() as u64) as usize];
                self.flowlet.insert(key, (now, spine));
                spine
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecmp_is_stable_per_flow_and_spreads() {
        let mut r = Router::new(RouteMode::Ecmp, 42);
        let spines = [4u32, 5, 6, 7];
        let mut seen = std::collections::HashSet::new();
        for flow in 0..256u64 {
            let a = r.pick_spine(0, flow, 0, &spines);
            let b = r.pick_spine(0, flow, 99_999, &spines);
            assert_eq!(a, b, "ECMP must pin flow {flow}");
            seen.insert(a);
        }
        assert_eq!(seen.len(), 4, "hash should reach every spine");
    }

    #[test]
    fn flowlet_rebalances_only_across_gaps() {
        let mut r = Router::new(RouteMode::Flowlet { gap: 100 }, 7);
        let spines = [4u32, 5, 6, 7];
        let first = r.pick_spine(0, 9, 0, &spines);
        // Within the gap: sticky, and the timer refreshes each packet.
        for t in [50u64, 140, 220] {
            assert_eq!(r.pick_spine(0, 9, t, &spines), first);
        }
        // After a long silence some flow re-picks; over many flows the
        // re-picks must actually move (not all stay put).
        let mut moved = false;
        for flow in 0..64u64 {
            let a = r.pick_spine(1, flow, 0, &spines);
            let b = r.pick_spine(1, flow, 1_000_000, &spines);
            moved |= a != b;
        }
        assert!(moved, "flowlet gaps should allow path changes");
    }

    #[test]
    fn dead_spine_is_left_out_by_construction() {
        let mut r = Router::new(RouteMode::Flowlet { gap: 1_000 }, 1);
        let all = [4u32, 5];
        let flow = 3;
        let spine = r.pick_spine(0, flow, 0, &all);
        // Candidates shrink (spine died): sticky choice must be
        // abandoned even inside the gap.
        let survivors: Vec<u32> = all.iter().copied().filter(|&s| s != spine).collect();
        let next = r.pick_spine(0, flow, 10, &survivors);
        assert_ne!(next, spine);
        assert!(survivors.contains(&next));
    }

    #[test]
    fn route_mode_parses_cli_spellings() {
        assert_eq!("ecmp".parse(), Ok(RouteMode::Ecmp));
        assert_eq!("flowlet:500".parse(), Ok(RouteMode::Flowlet { gap: 500 }));
        assert!(matches!(
            "flowlet".parse(),
            Ok(RouteMode::Flowlet { gap }) if gap > 0
        ));
        assert!("flowlet:0".parse::<RouteMode>().is_err());
        assert!("lb".parse::<RouteMode>().is_err());
    }
}
