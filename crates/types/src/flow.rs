//! Flow identification (5-tuples).
//!
//! Workload generators and the reordering analysis in `mp5-sim` identify
//! flows by the classic 5-tuple. The DSL itself only sees integer header
//! fields; [`FlowKey::field_values`] defines the canonical mapping from a
//! 5-tuple to the `src_ip`/`dst_ip`/`src_port`/`dst_port`/`proto` packet
//! fields used by the bundled applications.

use crate::{hash2, Value};

/// A transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowKey {
    /// Canonical field names, in the order returned by
    /// [`FlowKey::field_values`].
    pub const FIELD_NAMES: [&'static str; 5] =
        ["src_ip", "dst_ip", "src_port", "dst_port", "proto"];

    /// The 5-tuple as DSL field values, in [`FlowKey::FIELD_NAMES`] order.
    pub fn field_values(&self) -> [Value; 5] {
        [
            self.src_ip as Value,
            self.dst_ip as Value,
            self.src_port as Value,
            self.dst_port as Value,
            self.proto as Value,
        ]
    }

    /// A deterministic non-negative hash of the 5-tuple, matching what a
    /// DSL program computes with
    /// `hash3(hash2(p.src_ip, p.dst_ip), hash2(p.src_port, p.dst_port), p.proto)`-style
    /// expressions. Used by generators to predict which register index a
    /// flow maps to.
    pub fn hash(&self) -> Value {
        let a = hash2(self.src_ip as Value, self.dst_ip as Value);
        let b = hash2(self.src_port as Value, self.dst_port as Value);
        hash2(hash2(a, b), self.proto as Value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        FlowKey {
            src_ip: 0x0a00_0000 + i,
            dst_ip: 0x0b00_0000 + i,
            src_port: 1000 + (i % 50_000) as u16,
            dst_port: 80,
            proto: 6,
        }
    }

    #[test]
    fn hash_is_stable_and_non_negative() {
        for i in 0..1000 {
            let k = key(i);
            assert_eq!(k.hash(), k.hash());
            assert!(k.hash() >= 0);
        }
    }

    #[test]
    fn distinct_flows_mostly_distinct_hashes() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            seen.insert(key(i).hash());
        }
        assert_eq!(seen.len(), 10_000, "5-tuple hash collided unexpectedly");
    }

    #[test]
    fn field_values_order_matches_names() {
        let k = key(1);
        let v = k.field_values();
        assert_eq!(v[0], k.src_ip as Value);
        assert_eq!(v[4], k.proto as Value);
        assert_eq!(FlowKey::FIELD_NAMES.len(), v.len());
    }
}
