//! The packet representation shared by all switch models.

use crate::ids::{FieldId, PacketId, PipelineId, PortId, RegId, StageId};
use crate::time::Time;
use crate::Value;

/// A resolved state access, produced by MP5's preemptive address
/// resolution stage (paper §3.3).
///
/// The resolution stage computes, for every register array a packet will
/// touch, the concrete index and looks up the pipeline currently holding
/// that index in the index-to-pipeline map. The tuple
/// `(packet id, register, index, pipeline, stage)` is exactly what the
/// paper writes into both the phantom packet and the data packet's
/// metadata to aid steering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AccessTag {
    /// The register array being accessed.
    pub reg: RegId,
    /// The resolved index within the register array.
    pub index: u32,
    /// The pipeline holding the active copy of this index, at resolution
    /// time.
    pub pipeline: PipelineId,
    /// The stage holding the register array.
    pub stage: StageId,
    /// Whether the access is *speculative*: generated for a branch whose
    /// predicate could not be evaluated preemptively (paper §3.3). A
    /// speculative phantom whose branch turns out false is discarded at
    /// the stateful stage, costing one wasted slot.
    pub speculative: bool,
}

/// What finally happened to a packet, recorded by the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PacketDisposition {
    /// Still inside the switch when the simulation ended.
    InFlight,
    /// Processed completely and emitted, at the given time.
    Completed(Time),
    /// Dropped because a stage FIFO was full when its phantom arrived.
    DroppedPhantomFifoFull,
    /// Dropped because its phantom was missing from the FIFO directory
    /// when the data packet arrived (the phantom was dropped earlier).
    DroppedNoPhantom,
    /// Dropped at ingress (input buffer overflow under oversubscription).
    DroppedIngress,
    /// A stateless packet dropped in favor of a starving stateful packet
    /// (paper §3.4, "Handling starvation").
    DroppedForStarvation,
}

impl PacketDisposition {
    /// True if the packet made it through the switch.
    pub fn is_completed(self) -> bool {
        matches!(self, PacketDisposition::Completed(_))
    }
}

/// A packet flowing through a switch model.
///
/// Header fields (and compiler-introduced metadata fields) live in a flat
/// `Vec<Value>` indexed by [`FieldId`]; the compiler's field table maps
/// names to ids once, so the simulators never touch strings.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Packet {
    /// Unique id (also the phantom-directory key).
    pub id: PacketId,
    /// Arrival port.
    pub port: PortId,
    /// Arrival time at the switch, in byte-times.
    pub arrival: Time,
    /// Wire size in bytes (including headers); drives the arrival process.
    pub size: u32,
    /// Header + metadata field values, indexed by [`FieldId`].
    pub fields: Vec<Value>,
    /// Resolved state accesses, filled in by the address resolution stage.
    /// Ordered by ascending stage.
    pub tags: Vec<AccessTag>,
    /// Congestion-experienced mark, set by the switch when the packet
    /// found a stateful-stage FIFO above the ECN threshold (§3.4's
    /// "explicit congestion notification"-inspired backpressure).
    pub ecn: bool,
}

impl Packet {
    /// Creates a packet with the given identity and `nfields` zeroed
    /// fields.
    pub fn new(id: PacketId, port: PortId, arrival: Time, size: u32, nfields: usize) -> Self {
        Packet {
            id,
            port,
            arrival,
            size,
            fields: vec![0; nfields],
            tags: Vec::new(),
            ecn: false,
        }
    }

    /// Reads a field.
    #[inline]
    pub fn get(&self, f: FieldId) -> Value {
        self.fields[f.index()]
    }

    /// Writes a field.
    #[inline]
    pub fn set(&mut self, f: FieldId, v: Value) {
        self.fields[f.index()] = v;
    }

    /// The total order in which packets enter the processing pipeline
    /// (paper §2.2.1): ascending arrival time, ties broken by the smaller
    /// port id.
    #[inline]
    pub fn entry_order_key(&self) -> (Time, PortId) {
        (self.arrival, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_order_breaks_ties_by_port() {
        let a = Packet::new(PacketId(0), PortId(3), 100, 64, 2);
        let b = Packet::new(PacketId(1), PortId(1), 100, 64, 2);
        assert!(b.entry_order_key() < a.entry_order_key());
    }

    #[test]
    fn entry_order_prefers_earlier_arrival() {
        let a = Packet::new(PacketId(0), PortId(9), 50, 64, 0);
        let b = Packet::new(PacketId(1), PortId(0), 51, 64, 0);
        assert!(a.entry_order_key() < b.entry_order_key());
    }

    #[test]
    fn field_get_set_roundtrip() {
        let mut p = Packet::new(PacketId(7), PortId(0), 0, 64, 4);
        p.set(FieldId(2), -42);
        assert_eq!(p.get(FieldId(2)), -42);
        assert_eq!(p.get(FieldId(0)), 0);
    }

    #[test]
    fn disposition_completed() {
        assert!(PacketDisposition::Completed(5).is_completed());
        assert!(!PacketDisposition::DroppedNoPhantom.is_completed());
        assert!(!PacketDisposition::InFlight.is_completed());
    }
}
