//! Common types shared across the MP5 workspace.
//!
//! This crate defines the vocabulary of the whole system: identifiers for
//! ports, pipelines, stages and register arrays; the integer [`Value`]
//! domain of the Domino-like language; the [`Time`] model used by the
//! cycle-accurate simulators; and the [`Packet`] representation that flows
//! through every switch model in the workspace.
//!
//! # Time model
//!
//! Following §2.2 of the paper, a switch with `N` ports of bandwidth `B`
//! has a *fixed* aggregate capacity `N·B` regardless of how many parallel
//! pipelines it has: each of the `k` pipelines runs at `N·B/k`. We measure
//! time in **byte-times**: one byte-time is the time the aggregate switch
//! takes to receive one byte at line rate. A minimum-size (64 B) packet
//! therefore occupies [`BYTES_PER_SLOT`] byte-times of aggregate capacity,
//! a single logical pipeline admits one packet every 64 byte-times, and
//! one pipeline of a `k`-pipeline switch admits one packet every `64·k`
//! byte-times (its *cycle*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fasthash;
pub mod flow;
pub mod ids;
pub mod packet;
pub mod time;

pub use fasthash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use flow::FlowKey;
pub use ids::{FieldId, PacketId, PipelineId, PortId, RegId, StageId};
pub use packet::{AccessTag, Packet, PacketDisposition};
pub use time::{Cycle, Time, BYTES_PER_SLOT};

/// The integer value domain of the Domino-like language.
///
/// Domino models all packet fields and register entries as machine
/// integers; we use `i64` with wrapping arithmetic so that programs are
/// deterministic and never panic on overflow (matching hardware ALUs).
pub type Value = i64;

/// A deterministic 2-input hash, used by the `hash2` DSL builtin and by
/// workload generators.
///
/// This is a fixed multiply–xor mixer (SplitMix64-style). It is *not*
/// cryptographic; it only needs to be deterministic and well-spread, like
/// the hardware hash units on RMT switches.
#[inline]
pub fn hash2(a: Value, b: Value) -> Value {
    let mut x = (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (b as u64).rotate_left(31);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x & 0x7FFF_FFFF_FFFF_FFFF) as Value
}

/// A deterministic 3-input hash, used by the `hash3` DSL builtin.
#[inline]
pub fn hash3(a: Value, b: Value, c: Value) -> Value {
    hash2(hash2(a, b), c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash2_is_deterministic() {
        assert_eq!(hash2(1, 2), hash2(1, 2));
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
    }

    #[test]
    fn hash2_is_non_negative() {
        for a in -100..100 {
            for b in -100..100 {
                assert!(hash2(a, b) >= 0, "hash2({a},{b}) must be non-negative");
            }
        }
    }

    #[test]
    fn hash2_spreads() {
        // Adjacent inputs should not collide in the low bits (used for
        // register indexing via `% size`).
        let mut seen = std::collections::HashSet::new();
        for a in 0..1000 {
            seen.insert(hash2(a, 7) % 1024);
        }
        assert!(seen.len() > 600, "hash too clustered: {}", seen.len());
    }

    #[test]
    fn hash3_differs_from_hash2() {
        assert_ne!(hash3(1, 2, 0), hash2(1, 2));
    }
}
