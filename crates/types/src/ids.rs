//! Strongly-typed identifiers.
//!
//! Every entity in the switch models (ports, pipelines, stages, register
//! arrays, packet header fields, packets) gets its own newtype so that the
//! compiler catches index mix-ups (e.g. using a pipeline id to index a
//! stage array) at type-check time.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw value as a `usize`, for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A globally unique packet identifier, assigned at trace generation.
    ///
    /// Packet ids are also used as phantom-packet keys: the phantom for a
    /// data packet carries the data packet's id (paper §3.2, the FIFO
    /// directory is "indexed by packet's id").
    PacketId,
    u64
);

id_type!(
    /// A switch input port (0-based). The paper's default switch has 64.
    PortId,
    u16
);

id_type!(
    /// One of the `k` parallel pipelines (0-based).
    PipelineId,
    u16
);

id_type!(
    /// A pipeline stage (0-based). The paper's default switch has 16.
    StageId,
    u16
);

id_type!(
    /// A register array declared by the packet-processing program.
    RegId,
    u16
);

id_type!(
    /// A packet header field (or compiler-introduced metadata field).
    ///
    /// The compiler resolves field *names* to dense `FieldId`s so the
    /// simulators index a flat value vector instead of hashing strings.
    FieldId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let p = PipelineId(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "3");
        assert_eq!(PipelineId::from(3usize), p);
        assert_eq!(PipelineId::from(3u16), p);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(StageId(1) < StageId(2));
        assert!(PacketId(10) > PacketId(9));
    }

    #[test]
    fn distinct_id_types_hash_independently() {
        use std::collections::HashSet;
        let mut s: HashSet<RegId> = HashSet::new();
        s.insert(RegId(1));
        s.insert(RegId(1));
        assert_eq!(s.len(), 1);
    }
}
