//! A fast, non-cryptographic hasher for the simulator's internal maps.
//!
//! The hot loop keys hash maps with small fixed-width ids — packet ids,
//! `(register, index)` pairs, phantom keys — at per-packet and
//! per-access frequency (the access log alone takes one map-entry
//! operation per stateful access). `std`'s default SipHash is
//! DoS-resistant but costs an order of magnitude more than these keys
//! need; nothing here hashes attacker-controlled input, so the
//! simulator uses an xor-multiply-xorshift mixer instead (a splitmix64
//! finalizer step per word: 3 ALU ops, full avalanche on the low bits
//! the hash table actually uses).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Word-at-a-time xor-multiply-xorshift hasher (see module docs).
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let mut x = self.0 ^ word;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 29;
        self.0 = x;
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fixed-width id types hit the typed paths below; this generic
        // path only sees compound keys' padding-free byte runs.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by trusted fixed-width ids (see module docs).
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` over trusted fixed-width ids (see module docs).
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ids_hash_distinctly() {
        // Not a statistical test — just a guard that the mixer actually
        // mixes (a broken identity hash would collide every table slot
        // for sequential ids' low bits after masking).
        let h = |v: u64| {
            let mut hh = FastHasher::default();
            hh.write_u64(v);
            hh.finish()
        };
        let mut low_bits: Vec<u64> = (0..64).map(|v| h(v) & 0xfff).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(low_bits.len() > 60, "sequential ids collide in low bits");
    }

    #[test]
    fn byte_path_matches_no_padding() {
        // Same logical key through the byte path twice is stable.
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        // Trailing-length tag keeps prefixes distinct.
        let mut c = FastHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 0]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn fast_map_and_set_work() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FastSet<u32> = FastSet::default();
        assert!(s.insert(9));
        assert!(s.remove(&9));
    }
}
