//! The simulation time model.
//!
//! See the crate-level documentation for the rationale. In short:
//!
//! * [`Time`] is measured in **byte-times**: the time for the aggregate
//!   switch to receive one byte at line rate (`N·B`).
//! * A 64 B packet occupies [`BYTES_PER_SLOT`] byte-times of aggregate
//!   capacity, so at line rate with minimum-size packets one packet
//!   arrives every 64 byte-times.
//! * A `k`-pipeline switch clocks each pipeline once every
//!   `BYTES_PER_SLOT · k` byte-times (each pipeline runs at `N·B/k`);
//!   the corresponding logical single pipeline clocks every
//!   `BYTES_PER_SLOT` byte-times.

/// Absolute simulation time in byte-times.
pub type Time = u64;

/// A pipeline clock cycle index (0-based).
pub type Cycle = u64;

/// Bytes of aggregate line-rate capacity consumed by one minimum-size
/// (64 B) Ethernet packet — i.e. byte-times per single-pipeline slot.
pub const BYTES_PER_SLOT: u64 = 64;

/// Duration of one pipeline cycle, in byte-times, for a switch with `k`
/// parallel pipelines.
///
/// Each pipeline processes packets at `N·B/k`, i.e. one (64 B-equivalent)
/// packet every `64·k` byte-times.
#[inline]
pub fn cycle_len(pipelines: usize) -> Time {
    BYTES_PER_SLOT * pipelines as u64
}

/// Converts an absolute time to the index of the pipeline cycle containing
/// it, for a switch with `k` pipelines.
#[inline]
pub fn cycle_of(time: Time, pipelines: usize) -> Cycle {
    time / cycle_len(pipelines)
}

/// The absolute start time of a given pipeline cycle.
#[inline]
pub fn cycle_start(cycle: Cycle, pipelines: usize) -> Time {
    cycle * cycle_len(pipelines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_len_scales_with_pipelines() {
        assert_eq!(cycle_len(1), 64);
        assert_eq!(cycle_len(4), 256);
    }

    #[test]
    fn cycle_of_is_inverse_of_cycle_start() {
        for k in [1usize, 2, 4, 8, 16] {
            for c in [0u64, 1, 7, 1000] {
                assert_eq!(cycle_of(cycle_start(c, k), k), c);
                // Any time strictly inside the cycle maps back to it.
                assert_eq!(cycle_of(cycle_start(c, k) + cycle_len(k) - 1, k), c);
            }
        }
    }
}
