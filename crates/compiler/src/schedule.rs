//! The *Pipelining* phase: dependency-driven stage assignment.
//!
//! Produces the PVSM (Pipelined Virtual Switch Machine) schedule — a
//! pipeline with unbounded stages/width, but honouring the Banzai
//! execution model:
//!
//! * **Atomic state operations**: every access to one register array,
//!   plus all computation on any read→write path through it, is fused
//!   into a single-stage *cluster* (a Banzai stateful atom).
//! * **No state sharing across stages**: each register array lives in
//!   exactly one stage; two arrays never share a PVSM stage (the
//!   transformer's serialization rule in §3.3). Code generation may
//!   later re-merge stages under resource pressure (pinned fallback).
//! * **Feed-forward data flow**: a value computed at stage `s` is usable
//!   at stage `s` only within the same atom's combinational chain depth;
//!   otherwise at stage `> s`.
//!
//! Scheduling is a monotone fixed-point ASAP pass over `(stage, depth)`
//! labels; cluster members share one stage label.

use std::collections::HashMap;

use mp5_lang::tac::{TacInstr, TacProgram};
use mp5_lang::Operand;
use mp5_types::{FieldId, RegId};

use crate::slice::Slicer;

/// A fused stateful atom: all operations on one register array — or,
/// for Banzai "pairs"-class atoms, on the small set of register arrays
/// entangled by a common read→write dataflow (they must share a stage
/// and update atomically).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The register array(s) of this atom. One for ordinary atoms;
    /// several only for pairs-class atoms.
    pub regs: Vec<RegId>,
    /// Member instruction positions, ascending.
    pub members: Vec<usize>,
    /// Assigned PVSM stage.
    pub stage: usize,
}

/// The pipelining result.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// PVSM stage per instruction.
    pub stage_of: Vec<usize>,
    /// Cluster index per instruction (stateful atoms only).
    pub cluster_of: Vec<Option<usize>>,
    /// Stateful atoms, one per accessed register array.
    pub clusters: Vec<Cluster>,
    /// Total PVSM stages.
    pub num_stages: usize,
}

/// Errors detected during pipelining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A computation chains reads of one register into writes of another
    /// and back, requiring a multi-register ("pairs") atom, and the
    /// target machine does not provide pairs-class atoms.
    CrossRegisterAtom {
        /// Names of the entangled registers.
        regs: Vec<String>,
    },
    /// Internal fixed-point failed to converge (defensive bound).
    NoConvergence,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::CrossRegisterAtom { regs } => write!(
                f,
                "program requires an atomic operation spanning registers {}; \
                 Banzai atoms operate on a single register array",
                regs.join(", ")
            ),
            ScheduleError::NoConvergence => write!(f, "stage assignment did not converge"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Runs pipelining on a three-address program. `allow_pairs` controls
/// whether multi-register (Banzai "pairs") atoms are accepted.
pub fn pipeline(tac: &TacProgram, max_chain_depth: usize) -> Result<Schedule, ScheduleError> {
    pipeline_with(tac, max_chain_depth, true)
}

/// [`pipeline`] with explicit pairs-atom support control.
pub fn pipeline_with(
    tac: &TacProgram,
    max_chain_depth: usize,
    allow_pairs: bool,
) -> Result<Schedule, ScheduleError> {
    let maxd = max_chain_depth.max(1);
    let n = tac.instrs.len();
    let slicer = Slicer::new(tac);

    // ---- def-use producers and field read/write positions ----
    let uses: Vec<Vec<FieldId>> = tac.instrs.iter().map(instr_uses).collect();
    let producers: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            uses[j]
                .iter()
                .filter_map(|&f| slicer.last_def(f, j))
                .collect()
        })
        .collect();

    // WAR/WAW: a definition of field f at j must not be scheduled before
    // any earlier instruction that read or wrote f.
    let mut readers_of: HashMap<FieldId, Vec<usize>> = HashMap::new();
    let mut writer_of: HashMap<FieldId, usize> = HashMap::new();
    let mut order_constraints: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        if let Some(dst) = instr_def(&tac.instrs[j]) {
            if let Some(rs) = readers_of.get(&dst) {
                order_constraints[j].extend(rs.iter().copied());
            }
            if let Some(&w) = writer_of.get(&dst) {
                order_constraints[j].push(w);
            }
            writer_of.insert(dst, j);
        }
        for &f in &uses[j] {
            readers_of.entry(f).or_default().push(j);
        }
    }

    // ---- clusters ----
    let (clusters, cluster_of) = build_clusters(tac, &producers, &order_constraints, allow_pairs)?;

    // ---- fixed-point (stage, depth) assignment ----
    let mut stage = vec![0usize; n];
    let mut depth = vec![0usize; n];
    let mut cl_stage = vec![0usize; clusters.len()];
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > 10_000 {
            return Err(ScheduleError::NoConvergence);
        }
        let mut changed = false;
        for j in 0..n {
            // Availability-based lower bound from data producers. Every
            // instruction occupies at least depth 1 of its stage's
            // combinational budget.
            let mut lb_s = 0usize;
            let mut lb_d = 1usize;
            for &p in &producers[j] {
                if cluster_of[p].is_some() && cluster_of[p] == cluster_of[j] {
                    continue; // intra-atom chain: combinational
                }
                let (ps, pd) = match cluster_of[p] {
                    Some(c) => (cl_stage[c], maxd),
                    None => (stage[p], depth[p]),
                };
                let (cs, cd) = if pd < maxd { (ps, pd + 1) } else { (ps + 1, 1) };
                if cs > lb_s {
                    lb_s = cs;
                    lb_d = cd;
                } else if cs == lb_s {
                    lb_d = lb_d.max(cd);
                }
            }
            // Order-only (WAR/WAW) lower bounds: same stage permitted.
            for &p in &order_constraints[j] {
                let ps = match cluster_of[p] {
                    Some(c) => cl_stage[c],
                    None => stage[p],
                };
                if ps > lb_s {
                    lb_s = ps;
                    lb_d = 1;
                }
            }
            match cluster_of[j] {
                Some(c) => {
                    if lb_s > cl_stage[c] {
                        cl_stage[c] = lb_s;
                        changed = true;
                    }
                }
                None => {
                    if lb_s > stage[j] || (lb_s == stage[j] && lb_d > depth[j]) {
                        stage[j] = lb_s.max(stage[j]);
                        depth[j] = if lb_s >= stage[j] { lb_d } else { depth[j] };
                        changed = true;
                    }
                }
            }
        }
        if changed {
            continue;
        }
        // One register array per stage: bump colliding clusters.
        let mut by_stage: HashMap<usize, Vec<usize>> = HashMap::new();
        for (ci, _) in clusters.iter().enumerate() {
            by_stage.entry(cl_stage[ci]).or_default().push(ci);
        }
        let mut bumped = false;
        for (_, mut cs) in by_stage {
            if cs.len() > 1 {
                // Keep the cluster whose first member appears earliest;
                // bump the rest (deterministically).
                cs.sort_by_key(|&c| clusters[c].members[0]);
                for &c in &cs[1..] {
                    cl_stage[c] += 1;
                    bumped = true;
                }
            }
        }
        if !bumped {
            break;
        }
    }

    // Materialise per-instruction stages.
    for j in 0..n {
        if let Some(c) = cluster_of[j] {
            stage[j] = cl_stage[c];
        }
    }
    let num_stages = stage.iter().copied().max().map_or(0, |m| m + 1);
    let clusters = clusters
        .into_iter()
        .enumerate()
        .map(|(ci, c)| Cluster {
            stage: cl_stage[ci],
            ..c
        })
        .collect();
    Ok(Schedule {
        stage_of: stage,
        cluster_of,
        clusters,
        num_stages,
    })
}

/// Fields read by an instruction.
fn instr_uses(ins: &TacInstr) -> Vec<FieldId> {
    let mut out = Vec::new();
    let mut push = |o: &Operand| {
        if let Operand::Field(f) = o {
            out.push(*f);
        }
    };
    match ins {
        TacInstr::Assign { expr, .. } => {
            for o in expr.operands() {
                push(&o);
            }
        }
        TacInstr::RegRead { idx, pred, .. } => {
            push(idx);
            if let Some(p) = pred {
                push(p);
            }
        }
        TacInstr::RegWrite { idx, val, pred, .. } => {
            push(idx);
            push(val);
            if let Some(p) = pred {
                push(p);
            }
        }
    }
    out
}

/// Field defined by an instruction, if any.
fn instr_def(ins: &TacInstr) -> Option<FieldId> {
    match ins {
        TacInstr::Assign { dst, .. } | TacInstr::RegRead { dst, .. } => Some(*dst),
        TacInstr::RegWrite { .. } => None,
    }
}

/// Builds stateful atoms.
///
/// A register's atom contains its reads/writes plus every instruction on
/// a dataflow path from one of its reads to one of its writes (Banzai
/// atomicity). When such a path passes through *another* register's
/// operations — or two registers' paths share an instruction — the
/// registers are entangled and must update atomically in one stage: a
/// Banzai "pairs"-class atom. Entanglement is computed to a fixed point,
/// since merging two registers can lengthen the read→write paths and
/// pull in further instructions or registers.
fn build_clusters(
    tac: &TacProgram,
    producers: &[Vec<usize>],
    order_preds: &[Vec<usize>],
    allow_pairs: bool,
) -> Result<(Vec<Cluster>, Vec<Option<usize>>), ScheduleError> {
    let n = tac.instrs.len();
    // consumers[p] = instructions with a data edge from p.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, ps) in producers.iter().enumerate() {
        for &p in ps {
            consumers[p].push(j);
        }
    }
    // Scheduling successors: dataflow consumers plus WAR/WAW order
    // successors (used for entanglement detection below).
    let mut successors: Vec<Vec<usize>> = consumers.clone();
    for (j, ps) in order_preds.iter().enumerate() {
        for &p in ps {
            successors[p].push(j);
        }
    }

    // Per-register op positions.
    let nregs = tac.regs.len();
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); nregs];
    let mut writes: Vec<Vec<usize>> = vec![Vec::new(); nregs];
    for (j, ins) in tac.instrs.iter().enumerate() {
        match ins {
            TacInstr::RegRead { reg, .. } => reads[reg.index()].push(j),
            TacInstr::RegWrite { reg, .. } => writes[reg.index()].push(j),
            TacInstr::Assign { .. } => {}
        }
    }

    // The full member set of a group of registers: their ops plus every
    // instruction on a read->write path through the group.
    let members_of = |group: &[usize]| -> Vec<usize> {
        let mut fwd = vec![false; n];
        let mut stack: Vec<usize> = group
            .iter()
            .flat_map(|&r| reads[r].iter().copied())
            .collect();
        while let Some(p) = stack.pop() {
            for &c in &consumers[p] {
                if !fwd[c] {
                    fwd[c] = true;
                    stack.push(c);
                }
            }
        }
        let mut bwd = vec![false; n];
        let mut stack: Vec<usize> = group
            .iter()
            .flat_map(|&r| writes[r].iter().copied())
            .collect();
        while let Some(j) = stack.pop() {
            for &p in &producers[j] {
                if !bwd[p] {
                    bwd[p] = true;
                    stack.push(p);
                }
            }
        }
        let mut m: Vec<usize> = group
            .iter()
            .flat_map(|&r| reads[r].iter().chain(writes[r].iter()).copied())
            .collect();
        for j in 0..n {
            if fwd[j] && bwd[j] {
                m.push(j);
            }
        }
        m.sort_unstable();
        m.dedup();
        m
    };

    // Forward closure over scheduling successors from a seed set.
    let reach_of = |seed: &[usize]| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = seed.to_vec();
        while let Some(p) = stack.pop() {
            for &c in &successors[p] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        seen
    };

    // Start with one group per accessed register. Merge to a fixed point
    // on two conditions:
    // (1) member-set overlap (an instruction belongs to two atoms), and
    // (2) mutual reachability: each atom is a single stage, so if A's
    //     results (transitively) feed B and B's feed A, no stage order
    //     satisfies both — the registers must share one pairs atom.
    let mut groups: Vec<Vec<usize>> = (0..nregs)
        .filter(|&r| !reads[r].is_empty() || !writes[r].is_empty())
        .map(|r| vec![r])
        .collect();
    let mut members: Vec<Vec<usize>> = groups.iter().map(|g| members_of(g)).collect();
    'merge: loop {
        let reaches: Vec<Vec<bool>> = members.iter().map(|m| reach_of(m)).collect();
        for a in 0..groups.len() {
            for b in a + 1..groups.len() {
                let overlap = members[a]
                    .iter()
                    .any(|m| members[b].binary_search(m).is_ok());
                let mutual = members[b].iter().any(|&m| reaches[a][m])
                    && members[a].iter().any(|&m| reaches[b][m]);
                if overlap || mutual {
                    if !allow_pairs {
                        let mut regs: Vec<String> = groups[a]
                            .iter()
                            .chain(groups[b].iter())
                            .map(|&r| tac.regs[r].name.clone())
                            .collect();
                        regs.sort();
                        return Err(ScheduleError::CrossRegisterAtom { regs });
                    }
                    let gb = groups.remove(b);
                    members.remove(b);
                    groups[a].extend(gb);
                    groups[a].sort_unstable();
                    members[a] = members_of(&groups[a]);
                    continue 'merge;
                }
            }
        }
        break;
    }

    let mut cluster_of: Vec<Option<usize>> = vec![None; n];
    let mut clusters: Vec<Cluster> = Vec::new();
    for (g, m) in groups.into_iter().zip(members) {
        let ci = clusters.len();
        for &j in &m {
            debug_assert!(cluster_of[j].is_none(), "groups are disjoint");
            cluster_of[j] = Some(ci);
        }
        clusters.push(Cluster {
            regs: g.into_iter().map(RegId::from).collect(),
            members: m,
            stage: 0,
        });
    }
    Ok((clusters, cluster_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_lang::frontend;

    fn sched(src: &str) -> Schedule {
        pipeline(&frontend(src).unwrap(), 4).unwrap()
    }

    #[test]
    fn stateless_program_single_short_pipeline() {
        let s = sched(
            "struct Packet { int a; int b; };
             void func(struct Packet p) { p.b = p.a + 1; }",
        );
        assert_eq!(s.num_stages, 1);
        assert!(s.clusters.is_empty());
    }

    #[test]
    fn rmw_forms_single_cluster() {
        let s = sched(
            "struct Packet { int h; };
             int r[4];
             void func(struct Packet p) { r[p.h % 4] = r[p.h % 4] + 1; }",
        );
        assert_eq!(s.clusters.len(), 1);
        // Read, the +1, and the write all share one stage.
        let c = &s.clusters[0];
        assert!(c.members.len() >= 3);
        for &m in &c.members {
            assert_eq!(s.stage_of[m], c.stage);
        }
    }

    #[test]
    fn two_registers_two_distinct_stages() {
        let s = sched(
            "struct Packet { int h; };
             int a[4];
             int b[4];
             void func(struct Packet p) {
                 a[p.h % 4] = a[p.h % 4] + 1;
                 b[p.h % 4] = b[p.h % 4] + 1;
             }",
        );
        assert_eq!(s.clusters.len(), 2);
        assert_ne!(
            s.clusters[0].stage, s.clusters[1].stage,
            "each stateful stage holds exactly one register array"
        );
    }

    #[test]
    fn dependent_registers_are_ordered() {
        // b's index depends on a's read value: b's stage must be later.
        let s = sched(
            "struct Packet { int h; };
             int a[4];
             int b[4];
             void func(struct Packet p) {
                 int v = a[p.h % 4];
                 b[v % 4] = 1;
             }",
        );
        let a = s.clusters.iter().find(|c| c.regs == [RegId(0)]).unwrap();
        let b = s.clusters.iter().find(|c| c.regs == [RegId(1)]).unwrap();
        assert!(b.stage > a.stage);
    }

    #[test]
    fn cross_register_atom_needs_pairs_support() {
        let tac = frontend(
            "struct Packet { int h; };
             int a[4];
             int b[4];
             void func(struct Packet p) {
                 int t = a[0] + b[0];
                 a[0] = t;
                 b[0] = t;
             }",
        )
        .unwrap();
        // Without pairs atoms: rejected.
        assert!(matches!(
            pipeline_with(&tac, 4, false),
            Err(ScheduleError::CrossRegisterAtom { .. })
        ));
        // With pairs atoms: one merged two-register cluster.
        let s = pipeline_with(&tac, 4, true).unwrap();
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.clusters[0].regs, vec![RegId(0), RegId(1)]);
    }

    #[test]
    fn three_way_entanglement_merges_into_one_pairs_atom() {
        let tac = frontend(
            "struct Packet { int h; };
             int a[2];
             int b[2];
             int c[2];
             void func(struct Packet p) {
                 int t = a[0] + b[0] + c[0];
                 a[0] = t;
                 b[0] = t;
                 c[0] = t;
             }",
        )
        .unwrap();
        let s = pipeline_with(&tac, 4, true).unwrap();
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.clusters[0].regs.len(), 3);
    }

    #[test]
    fn chain_depth_limits_packing() {
        // A 5-op dependency chain with depth 1 needs 5 stages; with
        // depth 8 it fits in one.
        let src = "struct Packet { int a; int o; };
             void func(struct Packet p) {
                 int t1 = p.a + 1;
                 int t2 = t1 + 1;
                 int t3 = t2 + 1;
                 int t4 = t3 + 1;
                 p.o = t4;
             }";
        let tight = pipeline(&frontend(src).unwrap(), 1).unwrap();
        let loose = pipeline(&frontend(src).unwrap(), 16).unwrap();
        assert!(tight.num_stages > loose.num_stages);
        assert_eq!(loose.num_stages, 1);
        // Each local produces an expression temp plus a copy, so the
        // unit-depth pipeline is at least the 5-op source chain deep.
        assert!(tight.num_stages >= 5, "got {}", tight.num_stages);
    }

    #[test]
    fn war_prevents_early_overwrite() {
        // p.a is read by the first statement and overwritten by the
        // second; the overwrite must not be scheduled before the read.
        let s = sched(
            "struct Packet { int a; int o; };
             void func(struct Packet p) {
                 p.o = p.a * 10;
                 p.a = 0;
             }",
        );
        let read_stage = s.stage_of[0];
        let write_stage = s.stage_of[1];
        assert!(write_stage >= read_stage);
    }

    #[test]
    fn fig3_schedules_like_paper() {
        // Figure 3's program pipelines into: stage with reg1/reg2 reads
        // feeding p.val, then reg3's RMW — reg3 strictly after reg1/reg2.
        let s = sched(mp5_lang_fig3());
        let r1 = s
            .clusters
            .iter()
            .find(|c| c.regs == [RegId(0)])
            .unwrap()
            .stage;
        let r2 = s
            .clusters
            .iter()
            .find(|c| c.regs == [RegId(1)])
            .unwrap()
            .stage;
        let r3 = s
            .clusters
            .iter()
            .find(|c| c.regs == [RegId(2)])
            .unwrap()
            .stage;
        assert!(r3 > r1 && r3 > r2);
        assert_ne!(r1, r2, "serialized: one array per stage");
    }

    fn mp5_lang_fig3() -> &'static str {
        r#"
        struct Packet { int h1; int h2; int h3; int val; int mux; };
        int reg1[4] = {2, 4, 8, 16};
        int reg2[4] = {1, 3, 5, 7};
        int reg3[4] = {0};
        void func(struct Packet p) {
            p.val = (p.mux == 1) ? reg1[p.h1 % 4] : reg2[p.h2 % 4];
            reg3[p.h3 % 4] = (p.mux == 1)
                ? reg3[p.h3 % 4] * p.val
                : reg3[p.h3 % 4] + p.val;
        }
        "#
    }
}
