//! Backward program slicing and statefulness taint analysis.
//!
//! The PVSM-to-PVSM transformer must decide, for every register access,
//! whether the index and predicate "can be resolved at the packet
//! arrival itself" (§3.3) — i.e. whether their computation is a pure
//! function of packet header fields. We answer that with a backward
//! slice: starting from the operand at its use site, walk to defining
//! instructions; if the walk ever reaches a [`TacInstr::RegRead`], the
//! value is *stateful-tainted* and cannot be resolved preemptively.

use std::collections::BTreeSet;
use std::fmt;

use mp5_lang::tac::{TacInstr, TacProgram};
use mp5_lang::Operand;
use mp5_types::FieldId;

/// A failed lookup in the slicing helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The named register does not exist in the program.
    UnknownRegister(String),
    /// The register exists but the program never writes it.
    NoWrite(String),
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::UnknownRegister(name) => {
                write!(f, "no register named '{name}' in the program")
            }
            SliceError::NoWrite(name) => {
                write!(f, "register '{name}' is never written")
            }
        }
    }
}

impl std::error::Error for SliceError {}

/// Finds the first `RegWrite` to the named register, returning its
/// instruction position and index operand — the natural starting point
/// for a backward slice of the write's address.
pub fn find_write(tac: &TacProgram, reg_name: &str) -> Result<(usize, Operand), SliceError> {
    let rid = tac
        .reg(reg_name)
        .ok_or_else(|| SliceError::UnknownRegister(reg_name.to_string()))?;
    for (i, ins) in tac.instrs.iter().enumerate() {
        if let TacInstr::RegWrite { reg, idx, .. } = ins {
            if *reg == rid {
                return Ok((i, *idx));
            }
        }
    }
    Err(SliceError::NoWrite(reg_name.to_string()))
}

/// Backward slicer over a three-address program.
pub struct Slicer<'a> {
    tac: &'a TacProgram,
    /// For each field, the sorted positions of instructions that define
    /// it.
    defs: Vec<Vec<usize>>,
}

impl<'a> Slicer<'a> {
    /// Builds the def index for a program.
    pub fn new(tac: &'a TacProgram) -> Self {
        let mut defs = vec![Vec::new(); tac.field_names.len()];
        for (i, ins) in tac.instrs.iter().enumerate() {
            match ins {
                TacInstr::Assign { dst, .. } | TacInstr::RegRead { dst, .. } => {
                    defs[dst.index()].push(i);
                }
                TacInstr::RegWrite { .. } => {}
            }
        }
        Slicer { tac, defs }
    }

    /// The last instruction before `pos` that defines `field`, if any.
    /// `None` means the field still holds its packet-input value.
    pub fn last_def(&self, field: FieldId, pos: usize) -> Option<usize> {
        let ds = &self.defs[field.index()];
        match ds.binary_search(&pos) {
            Ok(0) | Err(0) => None,
            Ok(i) | Err(i) => Some(ds[i - 1]),
        }
    }

    /// Computes the backward *stateless* slice of `op` as used at
    /// program point `pos`: the set of instruction positions whose
    /// execution (in order) reproduces the operand's value from packet
    /// input fields alone.
    ///
    /// Returns `false` (leaving `out` in a partial state the caller must
    /// discard) if the value is stateful-tainted.
    pub fn slice_operand(&self, op: Operand, pos: usize, out: &mut BTreeSet<usize>) -> bool {
        let f = match op {
            Operand::Const(_) => return true,
            Operand::Field(f) => f,
        };
        let Some(def) = self.last_def(f, pos) else {
            return true; // packet input field: pure by definition
        };
        if out.contains(&def) {
            return true;
        }
        match &self.tac.instrs[def] {
            TacInstr::RegRead { .. } => false,
            TacInstr::Assign { expr, .. } => {
                out.insert(def);
                expr.operands()
                    .into_iter()
                    .all(|o| self.slice_operand(o, def, out))
            }
            TacInstr::RegWrite { .. } => unreachable!("writes do not define fields"),
        }
    }

    /// Convenience: slice an operand, returning the slice positions or
    /// `None` if tainted.
    pub fn try_slice(&self, op: Operand, pos: usize) -> Option<BTreeSet<usize>> {
        let mut out = BTreeSet::new();
        if self.slice_operand(op, pos, &mut out) {
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_lang::frontend;

    fn find_write_pos(tac: &TacProgram, reg_name: &str) -> (usize, Operand) {
        find_write(tac, reg_name).expect("test programs write their registers")
    }

    #[test]
    fn find_write_reports_typed_errors() {
        let tac = frontend(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { p.h = r[0]; }",
        )
        .unwrap();
        assert_eq!(
            find_write(&tac, "nope"),
            Err(SliceError::UnknownRegister("nope".into()))
        );
        assert_eq!(find_write(&tac, "r"), Err(SliceError::NoWrite("r".into())));
        assert!(find_write(&tac, "r")
            .unwrap_err()
            .to_string()
            .contains("never written"));
    }

    #[test]
    fn pure_index_is_sliceable() {
        let tac = frontend(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = 1; }",
        )
        .unwrap();
        let s = Slicer::new(&tac);
        let (pos, idx) = find_write_pos(&tac, "r");
        let slice = s.try_slice(idx, pos).expect("pure index must slice");
        assert_eq!(slice.len(), 1, "one instruction computes p.h % 8");
    }

    #[test]
    fn stateful_index_is_tainted() {
        let tac = frontend(
            "struct Packet { int h; };
             int ptr = 0;
             int r[8];
             void func(struct Packet p) { r[ptr % 8] = 1; }",
        )
        .unwrap();
        let s = Slicer::new(&tac);
        let (pos, idx) = find_write_pos(&tac, "r");
        assert!(
            s.try_slice(idx, pos).is_none(),
            "index via register read must taint"
        );
    }

    #[test]
    fn transitively_stateful_is_tainted() {
        let tac = frontend(
            "struct Packet { int h; };
             int seed = 0;
             int r[8];
             void func(struct Packet p) {
                 int a = seed + 1;
                 int b = a * 2;
                 r[b % 8] = 1;
             }",
        )
        .unwrap();
        let s = Slicer::new(&tac);
        let (pos, idx) = find_write_pos(&tac, "r");
        assert!(s.try_slice(idx, pos).is_none());
    }

    #[test]
    fn slice_respects_field_versions() {
        // The index uses p.h *after* it was overwritten; the slice must
        // include the overwrite.
        let tac = frontend(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) {
                 p.h = p.h + 3;
                 r[p.h % 8] = 1;
             }",
        )
        .unwrap();
        let s = Slicer::new(&tac);
        let (pos, idx) = find_write_pos(&tac, "r");
        // Slice: the `p.h + 3` temp, the store into p.h, and the `%`.
        let slice = s.try_slice(idx, pos).unwrap();
        assert_eq!(
            slice.len(),
            3,
            "must include the p.h overwrite chain and the %"
        );
    }

    #[test]
    fn const_and_raw_field_slices_empty() {
        let tac = frontend(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h] = 1; }",
        )
        .unwrap();
        let s = Slicer::new(&tac);
        let (pos, idx) = find_write_pos(&tac, "r");
        let slice = s.try_slice(idx, pos).unwrap();
        assert!(slice.is_empty(), "raw header field needs no computation");
        assert!(s.try_slice(Operand::Const(5), pos).unwrap().is_empty());
    }

    #[test]
    fn last_def_finds_nearest_preceding() {
        let tac = frontend(
            "struct Packet { int h; int o; };
             void func(struct Packet p) {
                 p.o = 1;
                 p.o = 2;
                 p.h = p.o;
             }",
        )
        .unwrap();
        let s = Slicer::new(&tac);
        let o = tac.field("o").unwrap();
        assert_eq!(s.last_def(o, 0), None);
        assert_eq!(s.last_def(o, 1), Some(0));
        assert_eq!(s.last_def(o, 2), Some(1));
    }
}
