//! Data-oriented batch execution kernels (DESIGN.md §13).
//!
//! The scalar interpreter in [`crate::program`] walks one packet at a
//! time: for every `(packet, stage)` pair it re-dispatches on each
//! [`TacInstr`] and allocates a fresh access `Vec`. The kernel here
//! flips the loop nest: the caller packs the fields of every packet
//! executing a given stage this cycle into a [`FieldMatrix`] (one row
//! per *lane*), and [`CompiledProgram::execute_stage_batch`] runs
//! **instruction-major** — one dispatch per instruction, then a tight
//! lane loop over matrix rows the compiler can unroll and vectorize.
//! State accesses land in a caller-owned flat buffer tagged by lane,
//! so steady-state execution allocates nothing.
//!
//! Semantics are shared with the scalar path, not duplicated: ALU
//! work funnels through the same [`TacExpr::eval`](mp5_lang::TacExpr)
//! and the stateful ops mirror `exec_instr` exactly (predicate-false
//! reads still zero the destination and record no access). The
//! equivalence is pinned by tests here and by the switch-level batch
//! round-trip property tests.

use crate::program::CompiledProgram;
use mp5_lang::tac::TacInstr;
use mp5_lang::{Operand, TacProgram};
use mp5_types::{RegId, Value};

/// Register-file accessor for batch execution.
///
/// Lanes of one batch may belong to different pipelines, each with its
/// own replica of every register array (design principle D2). The
/// kernel is generic over this trait — monomorphized per engine — so
/// the sequential engine can serve reads from the switch's register
/// table and the parallel engine from a worker's contiguous slice of
/// per-pipeline units, without the kernel knowing either layout.
pub trait BatchRegs {
    /// Reads `reg[idx]` in the register file of `slot` (the caller's
    /// pipeline/view handle carried per lane).
    fn read(&mut self, slot: u16, reg: RegId, idx: u32) -> Value;
    /// Writes `reg[idx] = val` in the register file of `slot`.
    fn write(&mut self, slot: u16, reg: RegId, idx: u32, val: Value);
}

/// Row-addressable per-lane field storage for batch execution.
///
/// The kernel only ever touches one lane's field vector at a time, so
/// it does not care whether rows live in a dense [`FieldMatrix`] or
/// in place inside caller-owned packets — the engine executes stages
/// directly over its parked flights' field vectors, skipping the
/// pack/unpack copy a dense matrix would force every cycle.
pub trait LaneFields {
    /// Lane `lane`'s field vector.
    fn row(&self, lane: u32) -> &[Value];
    /// Lane `lane`'s field vector, mutably.
    fn row_mut(&mut self, lane: u32) -> &mut [Value];
}

impl LaneFields for FieldMatrix {
    #[inline]
    fn row(&self, lane: u32) -> &[Value] {
        FieldMatrix::row(self, lane)
    }
    #[inline]
    fn row_mut(&mut self, lane: u32) -> &mut [Value] {
        FieldMatrix::row_mut(self, lane)
    }
}

/// One state access performed by one lane during a batch stage
/// execution. The flat list a kernel call appends to is
/// instruction-major; per-lane access order is recovered by filtering
/// on `lane` (instruction order is preserved within a lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccess {
    /// Lane (matrix row) that performed the access.
    pub lane: u32,
    /// Register array accessed.
    pub reg: RegId,
    /// Concrete wrapped index.
    pub index: u32,
}

/// A dense lane-major matrix of packet fields: row `l` holds the full
/// field vector of lane `l`. The struct-of-arrays half of the batch
/// representation — instruction-major kernels stride over rows with no
/// per-packet indirection, and the buffer is reused across cycles.
#[derive(Debug, Default)]
pub struct FieldMatrix {
    vals: Vec<Value>,
    stride: usize,
}

impl FieldMatrix {
    /// An empty matrix whose rows are `stride` fields wide.
    pub fn new(stride: usize) -> Self {
        FieldMatrix {
            vals: Vec::new(),
            stride,
        }
    }

    /// Drops all rows, keeping the allocation (and resets the row
    /// width, so one buffer serves differently-shaped programs).
    pub fn reset(&mut self, stride: usize) {
        self.vals.clear();
        self.stride = stride;
    }

    /// Appends a row, returning its lane id.
    pub fn push_row(&mut self, fields: &[Value]) -> u32 {
        debug_assert_eq!(fields.len(), self.stride);
        let lane = self.len();
        self.vals.extend_from_slice(fields);
        lane
    }

    /// Number of rows.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        // A zero-field program has stride 0 and no rows.
        self.vals.len().checked_div(self.stride).unwrap_or(0) as u32
    }

    /// Row `lane` as a field slice.
    pub fn row(&self, lane: u32) -> &[Value] {
        let base = lane as usize * self.stride;
        &self.vals[base..base + self.stride]
    }

    /// Row `lane` as a mutable field slice.
    pub fn row_mut(&mut self, lane: u32) -> &mut [Value] {
        let base = lane as usize * self.stride;
        &mut self.vals[base..base + self.stride]
    }
}

#[inline]
fn opval(o: &Operand, fields: &[Value]) -> Value {
    match o {
        Operand::Const(v) => *v,
        Operand::Field(f) => fields[f.index()],
    }
}

impl CompiledProgram {
    /// Executes one body stage over a batch of lanes in SoA layout.
    ///
    /// `lanes[i]` is a row of `fields` (any [`LaneFields`] store) and
    /// `slots[i]` the register-file handle its pipeline's state lives
    /// under. Accesses are appended to `out` tagged by lane, in
    /// instruction-major order; within a lane they appear in the
    /// scalar path's instruction order, so filtering `out` by lane and
    /// deduping consecutive duplicates reproduces
    /// [`CompiledProgram::execute_stage`]'s return value exactly.
    pub fn execute_stage_batch<F: LaneFields, R: BatchRegs>(
        &self,
        body_stage: usize,
        lanes: &[u32],
        slots: &[u16],
        fields: &mut F,
        regs: &mut R,
        out: &mut Vec<LaneAccess>,
    ) {
        debug_assert_eq!(lanes.len(), slots.len());
        let stage = &self.stages[body_stage];
        for ins in &stage.instrs {
            match ins {
                TacInstr::Assign { dst, expr } => {
                    let d = dst.index();
                    for &l in lanes {
                        let row = fields.row_mut(l);
                        row[d] = expr.eval(row);
                    }
                }
                TacInstr::RegRead {
                    dst,
                    reg,
                    idx,
                    pred,
                } => {
                    let d = dst.index();
                    let size = self.regs[reg.index()].size;
                    for (&l, &s) in lanes.iter().zip(slots) {
                        let row = fields.row_mut(l);
                        let taken = pred.as_ref().is_none_or(|p| opval(p, row) != 0);
                        row[d] = if taken {
                            let i = TacProgram::wrap_index(size, opval(idx, row));
                            out.push(LaneAccess {
                                lane: l,
                                reg: *reg,
                                index: i,
                            });
                            regs.read(s, *reg, i)
                        } else {
                            0
                        };
                    }
                }
                TacInstr::RegWrite {
                    reg,
                    idx,
                    val,
                    pred,
                } => {
                    let size = self.regs[reg.index()].size;
                    for (&l, &s) in lanes.iter().zip(slots) {
                        let row = fields.row(l);
                        let taken = pred.as_ref().is_none_or(|p| opval(p, row) != 0);
                        if taken {
                            let i = TacProgram::wrap_index(size, opval(idx, row));
                            regs.write(s, *reg, i, opval(val, row));
                            out.push(LaneAccess {
                                lane: l,
                                reg: *reg,
                                index: i,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp5_lang::tac::StateAccess;

    /// A plain per-slot register table, as the sequential engine sees
    /// it: `tables[slot][reg][index]`.
    struct Tables(Vec<Vec<Vec<Value>>>);

    impl BatchRegs for Tables {
        fn read(&mut self, slot: u16, reg: RegId, idx: u32) -> Value {
            self.0[slot as usize][reg.index()][idx as usize]
        }
        fn write(&mut self, slot: u16, reg: RegId, idx: u32, val: Value) {
            self.0[slot as usize][reg.index()][idx as usize] = val;
        }
    }

    fn compile(src: &str) -> CompiledProgram {
        crate::compile(src, &crate::Target::default()).expect("compile")
    }

    /// The batch kernel must agree with the scalar interpreter on every
    /// stage, field vector, and register cell — including per-lane
    /// access order after the filter-by-lane + consecutive-dedup
    /// recovery described on `execute_stage_batch`.
    #[test]
    fn batch_kernel_matches_scalar_interpreter() {
        let prog = compile(
            "struct Packet { int a; int b; };
             int ctr[16] = {0};
             int tot[4] = {0};
             void func(struct Packet p) {
                 ctr[p.a % 16] = ctr[p.a % 16] + 1;
                 if (p.b > 2) {
                     tot[p.b % 4] = tot[p.b % 4] + p.a;
                 }
             }",
        );
        let nf = prog.num_fields();
        // Three lanes on two register-file slots, exercising taken and
        // not-taken predicates.
        let seeds: [(u16, Value, Value); 3] = [(0, 3, 7), (1, 5, 1), (0, 9, 4)];
        let mut scalar_regs: Vec<Vec<Vec<Value>>> = (0..2).map(|_| prog.initial_regs()).collect();
        let mut batch_regs = Tables((0..2).map(|_| prog.initial_regs()).collect());
        let mut scalar_fields: Vec<Vec<Value>> = Vec::new();
        let mut fields = FieldMatrix::new(nf);
        let mut slots = Vec::new();
        for &(slot, a, b) in &seeds {
            let mut f = vec![0; nf];
            f[0] = a;
            f[1] = b;
            prog.resolve(&mut f);
            fields.push_row(&f);
            scalar_fields.push(f);
            slots.push(slot);
        }
        let lanes: Vec<u32> = (0..seeds.len() as u32).collect();
        for body in 0..prog.stages.len() {
            let mut out = Vec::new();
            prog.execute_stage_batch(body, &lanes, &slots, &mut fields, &mut batch_regs, &mut out);
            for (i, sf) in scalar_fields.iter_mut().enumerate() {
                let want = prog.execute_stage(body, sf, &mut scalar_regs[slots[i] as usize]);
                let mut got: Vec<StateAccess> = out
                    .iter()
                    .filter(|a| a.lane == i as u32)
                    .map(|a| StateAccess {
                        reg: a.reg,
                        index: a.index,
                    })
                    .collect();
                got.dedup();
                assert_eq!(got, want, "lane {i} accesses at body stage {body}");
                assert_eq!(fields.row(i as u32), sf.as_slice(), "lane {i} fields");
            }
        }
        assert_eq!(batch_regs.0, scalar_regs, "register state diverged");
    }

    #[test]
    fn field_matrix_round_trips_rows() {
        let mut m = FieldMatrix::new(3);
        assert_eq!(m.len(), 0);
        let a = m.push_row(&[1, 2, 3]);
        let b = m.push_row(&[4, 5, 6]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(m.row(1), &[4, 5, 6]);
        m.row_mut(0)[2] = 9;
        assert_eq!(m.row(0), &[1, 2, 9]);
        m.reset(2);
        assert_eq!(m.len(), 0);
        m.push_row(&[7, 8]);
        assert_eq!(m.row(0), &[7, 8]);
    }
}
