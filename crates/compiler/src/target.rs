//! Physical machine description (the Banzai-style code-generation
//! limits).

/// Resource limits of the physical pipeline that code generation must
/// respect.
///
/// Defaults follow the paper's evaluation configuration (§4.3.1): a
/// 16-stage switch, which fits "most practical stateful packet processing
/// algorithms" (4–10 stages per the Banzai paper) plus MP5's address
/// resolution prologue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Maximum physical pipeline stages (including the address
    /// resolution prologue added by the transformer).
    pub max_stages: usize,
    /// Maximum operations (atoms) per stage.
    pub max_ops_per_stage: usize,
    /// Maximum combinational ALU chain depth within one stage — how many
    /// dependent operations a single Banzai atom circuit may contain.
    pub max_chain_depth: usize,
    /// Whether the machine provides Banzai "pairs"-class atoms that
    /// update two (or more) entangled register arrays in one stage.
    /// Pairs atoms are pinned to one pipeline and serialized at stage
    /// granularity.
    pub allow_pairs: bool,
    /// SRAM budget per stage, in bits. Register state costs
    /// `size × (64 data + 30 metadata)` bits per array (§4.2's 30-bit
    /// per-index sharding metadata on top of the 64-bit value word).
    /// Checked by the `mp5-analysis` pressure estimator, not by code
    /// generation itself.
    pub max_sram_bits_per_stage: u64,
}

impl Default for Target {
    fn default() -> Self {
        Target {
            max_stages: 16,
            max_ops_per_stage: 64,
            max_chain_depth: 4,
            allow_pairs: true,
            // 1 MiB of stateful SRAM per stage — the order of magnitude
            // of commercial RMT-style switch stages.
            max_sram_bits_per_stage: 8 * 1024 * 1024,
        }
    }
}

impl Target {
    /// A tiny target for exercising resource-exhaustion paths in tests.
    pub fn tiny(max_stages: usize) -> Self {
        Target {
            max_stages,
            max_ops_per_stage: 8,
            max_chain_depth: 1,
            allow_pairs: false,
            max_sram_bits_per_stage: 64 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_config() {
        let t = Target::default();
        assert_eq!(t.max_stages, 16);
        assert!(t.max_chain_depth >= 1);
    }
}
