//! The MP5 compiler.
//!
//! Compiles three-address code (the output of `mp5-lang`'s *Preprocessing*
//! phase) down to a [`CompiledProgram`] that both the single-pipeline
//! Banzai reference switch and the MP5 multi-pipeline switch execute.
//! Following the paper's Figure 5, compilation proceeds through:
//!
//! 1. **Pipelining** ([`schedule`]): dependency-driven assignment of
//!    instructions to stages of a *Pipelined Virtual Switch Machine*
//!    (PVSM) — a switch pipeline with no resource limits. All operations
//!    touching one register array are fused into a single-stage atomic
//!    cluster (Banzai's "atomic state operations finish within one
//!    pipeline stage"), and each stateful stage holds exactly one
//!    register array (serializing multi-array access across stages, per
//!    §3.3).
//! 2. **PVSM-to-PVSM transformation** ([`transform`]): MP5's addition.
//!    Hoists match/predicate/index evaluation into an *address
//!    resolution* prologue at the head of the pipeline and plans phantom
//!    packet generation, handling the three hard cases of §3.3:
//!    stateful predicates (speculative phantoms for both branches),
//!    stateful index computations (array pinned to one pipeline,
//!    no sharding), and insufficient stages (co-resident arrays pinned,
//!    stage-level phantoms).
//! 3. **Code generation** ([`codegen`]): checks the PVSM against the
//!    physical machine's resource limits ([`target::Target`]) and emits
//!    the final [`CompiledProgram`].
//!
//! The compiled artifact is *one* program: MP5's design principle D1
//! (processing homogeneity) replicates it onto every pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod kernel;
pub mod program;
pub mod report;
pub mod schedule;
pub mod slice;
pub mod target;
pub mod transform;

pub use codegen::{
    compile, compile_tac, compile_with_options, CompileError, CompileOptions, FlowOrderSpec,
    FLOW_ORDER_REG,
};
pub use kernel::{BatchRegs, FieldMatrix, LaneAccess, LaneFields};
pub use program::{
    AccessPlan, CompiledProgram, IdxPlan, PredPlan, ResolutionCode, ResolvedAccess, StageCode,
};
pub use report::{AnalysisReport, AnalyzerFn, PressureEstimate, RegAnalysis, ShardClass};
pub use target::Target;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_counter_compiles() {
        let prog = compile(
            "struct Packet { int seq; };
             int count = 0;
             void func(struct Packet p) {
                 count = count + 1;
                 p.seq = count;
             }",
            &Target::default(),
        )
        .expect("counter must compile");
        assert_eq!(prog.regs.len(), 1);
        assert!(prog.num_stages() <= Target::default().max_stages);
        // One stateful stage for `count`.
        assert_eq!(prog.stages.iter().filter(|s| !s.regs.is_empty()).count(), 1);
    }
}
