//! Code generation: PVSM → physical pipeline configuration.
//!
//! Checks the transformed PVSM against the [`Target`] machine limits and
//! assembles the final [`CompiledProgram`]. When the serialized PVSM
//! needs more stages than the machine has, code generation applies the
//! paper's conservative fallback (§3.3): co-locate register arrays by
//! merging body stages from the tail of the pipeline, pin every array in
//! a shared stage (`shardable = false`), and replace their access plans
//! with a single stage-level plan that serializes all packets through
//! the stage in arrival order.

use std::collections::HashMap;

use mp5_lang::tac::TacProgram;
use mp5_lang::LangError;
use mp5_types::{RegId, StageId};

use crate::program::{
    AccessPlan, AtomClass, CompiledProgram, IdxPlan, PredPlan, RegMeta, StageCode,
    INDEX_ARRAY_LEVEL, REG_STAGE_SENTINEL,
};
use crate::schedule::{pipeline_with, ScheduleError};
use crate::target::Target;
use crate::transform::transform;

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Frontend (lex/parse/semantic) error.
    Lang(LangError),
    /// Pipelining error (e.g. cross-register atoms).
    Schedule(ScheduleError),
    /// The program needs more stages than the machine has, even after
    /// the shared-stage fallback (the resolution prologue alone
    /// overflows the pipeline).
    TooManyStages {
        /// Stages required (prologue + at least one body stage).
        needed: usize,
        /// Stages available.
        available: usize,
    },
    /// A stage exceeds the per-stage operation budget.
    TooManyOpsInStage {
        /// The overflowing physical stage.
        stage: usize,
        /// Operations required.
        needed: usize,
        /// Operations available.
        available: usize,
    },
    /// The pre-codegen analyzer ([`CompileOptions::analyzer`]) found
    /// error-level problems; compilation was not attempted.
    AnalysisRejected {
        /// Every diagnostic the analyzer produced (errors and below).
        diagnostics: Vec<mp5_lang::Diagnostic>,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::Schedule(e) => write!(f, "{e}"),
            CompileError::TooManyStages { needed, available } => {
                write!(f, "program needs {needed} stages, machine has {available}")
            }
            CompileError::TooManyOpsInStage {
                stage,
                needed,
                available,
            } => write!(
                f,
                "stage {stage} needs {needed} operations, machine allows {available}"
            ),
            CompileError::AnalysisRejected { diagnostics } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity >= mp5_lang::Severity::Error)
                    .count();
                match diagnostics
                    .iter()
                    .find(|d| d.severity >= mp5_lang::Severity::Error)
                {
                    Some(first) => write!(
                        f,
                        "analysis rejected the program ({errors} error{}): [{}] {}",
                        if errors == 1 { "" } else { "s" },
                        first.code,
                        first.message
                    ),
                    None => write!(f, "analysis rejected the program"),
                }
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

impl From<ScheduleError> for CompileError {
    fn from(e: ScheduleError) -> Self {
        CompileError::Schedule(e)
    }
}

/// Compiles DSL source text for the given target machine.
pub fn compile(source: &str, target: &Target) -> Result<CompiledProgram, CompileError> {
    let tac = mp5_lang::frontend(source)?;
    compile_tac(tac, target)
}

/// Name of the synthetic register added by
/// [`CompileOptions::enforce_flow_order`].
pub const FLOW_ORDER_REG: &str = "__flow_order";

/// How to build the flow-order key (§3.4's "dummy register state would
/// be indexed based on packet flow ids (e.g., hash of 5-tuple)").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowOrderSpec {
    /// Packet fields hashed into the flow key; all must be declared.
    pub key_fields: Vec<String>,
    /// Buckets in the dummy register array.
    pub buckets: u32,
}

impl Default for FlowOrderSpec {
    fn default() -> Self {
        FlowOrderSpec {
            key_fields: mp5_types::FlowKey::FIELD_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            buckets: 1024,
        }
    }
}

/// Optional compilation features.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// §3.4 "Handling starvation and packet re-ordering": append a dummy
    /// stateful operation, **in the final pipeline stage**, indexed by
    /// the flow hash. Its phantoms force every flow's packets back into
    /// arrival order right before they leave the pipeline, eliminating
    /// the reordering that stateless-over-stateful prioritization can
    /// otherwise cause (e.g. for NATs and stateful firewalls).
    pub enforce_flow_order: Option<FlowOrderSpec>,
    /// Optional pre-codegen analyzer (the `mp5-analysis` crate's
    /// `analyze_tac`, or any custom [`crate::report::AnalyzerFn`]). When
    /// set, it runs on the lowered TAC *before* code generation: if the
    /// report contains error-level findings, compilation stops with
    /// [`CompileError::AnalysisRejected`]; otherwise the report is
    /// attached to [`CompiledProgram::analysis`].
    pub analyzer: Option<crate::report::AnalyzerFn>,
}

impl PartialEq for CompileOptions {
    fn eq(&self, other: &Self) -> bool {
        let analyzers_eq = match (self.analyzer, other.analyzer) {
            (None, None) => true,
            (Some(a), Some(b)) => std::ptr::fn_addr_eq(a, b),
            _ => false,
        };
        self.enforce_flow_order == other.enforce_flow_order && analyzers_eq
    }
}

impl Eq for CompileOptions {}

/// Compiles with optional features.
pub fn compile_with_options(
    source: &str,
    target: &Target,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut tac = mp5_lang::frontend(source)?;
    if let Some(spec) = &opts.enforce_flow_order {
        append_flow_order(&mut tac, spec)?;
    }
    let report = opts.analyzer.map(|analyze| analyze(&tac, target));
    if let Some(r) = &report {
        if r.has_errors() {
            return Err(CompileError::AnalysisRejected {
                diagnostics: r.diagnostics.clone(),
            });
        }
    }
    let mut prog = compile_tac(tac, target)?;
    prog.analysis = report;
    if opts.enforce_flow_order.is_some() {
        relocate_flow_order(&mut prog, target)?;
    }
    debug_assert_eq!(prog.validate(), Ok(()));
    Ok(prog)
}

/// Appends `__flow_order[hash(key fields) % buckets] = 0` to the TAC.
fn append_flow_order(tac: &mut TacProgram, spec: &FlowOrderSpec) -> Result<(), CompileError> {
    use mp5_lang::tac::{RegInfo, TacInstr};
    use mp5_lang::{Operand, TacExpr};

    let mut key_ops = Vec::new();
    for name in &spec.key_fields {
        let id = tac.field(name).ok_or_else(|| {
            CompileError::Lang(mp5_lang::LangError::Semantic {
                span: Default::default(),
                message: format!("flow-order enforcement requires packet field '{name}'"),
            })
        })?;
        key_ops.push(Operand::Field(id));
    }
    let fresh = |tac: &mut TacProgram, tag: usize| {
        let id = mp5_types::FieldId::from(tac.field_names.len());
        tac.field_names.push(format!("$fo{tag}"));
        id
    };
    // Fold the key fields into one hash operand.
    let mut acc = *key_ops.first().unwrap_or(&Operand::Const(0));
    for (i, op) in key_ops.iter().copied().enumerate().skip(1) {
        let dst = fresh(tac, i);
        tac.instrs.push(TacInstr::Assign {
            dst,
            expr: TacExpr::Hash2(acc, op),
        });
        tac.spans.push(Default::default());
        acc = Operand::Field(dst);
    }
    let reg = mp5_types::RegId::from(tac.regs.len());
    tac.regs.push(RegInfo {
        name: FLOW_ORDER_REG.to_string(),
        size: spec.buckets,
        init: vec![0; spec.buckets as usize],
    });
    tac.instrs.push(TacInstr::RegWrite {
        reg,
        idx: acc,
        val: Operand::Const(0),
        pred: None,
    });
    tac.spans.push(Default::default());
    Ok(())
}

/// Moves the flow-order register into a dedicated *final* body stage —
/// ordering is only effective if nothing stateful happens after it.
fn relocate_flow_order(prog: &mut CompiledProgram, target: &Target) -> Result<(), CompileError> {
    let reg = prog.reg(FLOW_ORDER_REG).expect("just appended");
    let cur_body = prog.regs[reg.index()].stage.index() - prog.resolution.stages;
    let already_last = cur_body + 1 == prog.stages.len() && prog.stages[cur_body].regs.len() == 1;
    if !already_last {
        if prog.num_stages() + 1 > target.max_stages {
            return Err(CompileError::TooManyStages {
                needed: prog.num_stages() + 1,
                available: target.max_stages,
            });
        }
        // Extract the dummy write (its hash inputs are plain Assigns
        // computed earlier; only the stateful op moves).
        let mut moved = Vec::new();
        prog.stages[cur_body].instrs.retain(|ins| {
            if matches!(ins, mp5_lang::TacInstr::RegWrite { reg: r, .. } if *r == reg) {
                moved.push(ins.clone());
                false
            } else {
                true
            }
        });
        prog.stages[cur_body].regs.retain(|r| *r != reg);
        prog.stages.push(StageCode {
            instrs: moved,
            regs: vec![reg],
        });
    }
    let last = StageId((prog.resolution.stages + prog.stages.len() - 1) as u16);
    prog.regs[reg.index()].stage = last;
    for p in &mut prog.resolution.plans {
        if p.reg == reg {
            p.stage = last;
        }
    }
    prog.resolution.plans.sort_by_key(|p| p.stage);
    Ok(())
}

/// Compiles an already-lowered three-address program.
pub fn compile_tac(tac: TacProgram, target: &Target) -> Result<CompiledProgram, CompileError> {
    let sched = pipeline_with(&tac, target.max_chain_depth, target.allow_pairs)?;
    let xf = transform(&tac, &sched, target.max_chain_depth);

    // ---- assemble body stages from the schedule ----
    let mut body: Vec<StageCode> = (0..sched.num_stages.max(1))
        .map(|_| StageCode {
            instrs: Vec::new(),
            regs: Vec::new(),
        })
        .collect();
    for (j, ins) in tac.instrs.iter().enumerate() {
        body[sched.stage_of[j]].instrs.push(ins.clone());
    }
    for c in &sched.clusters {
        body[c.stage].regs.extend(c.regs.iter().copied());
    }

    let mut shardable = xf.shardable.clone();
    let mut plans = xf.resolution.plans.clone();
    let mut prologue_stages = xf.resolution.stages;

    // ---- stage-budget fallback: merge body stages from the tail ----
    let mut merged_any = false;
    while prologue_stages + body.len() > target.max_stages && body.len() > 1 {
        // Merge the last two body stages.
        let tail = body.pop().expect("len > 1");
        let last = body.last_mut().expect("len > 1");
        last.instrs.extend(tail.instrs);
        last.regs.extend(tail.regs);
        merged_any = true;
    }
    if prologue_stages + body.len() > target.max_stages {
        return Err(CompileError::TooManyStages {
            needed: prologue_stages + body.len(),
            available: target.max_stages,
        });
    }
    if merged_any {
        // Pin every register in a multi-register stage and replace its
        // plans with one stage-level plan.
        let shared: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, s)| s.regs.len() > 1)
            .map(|(i, _)| i)
            .collect();
        for &si in &shared {
            for r in &body[si].regs {
                shardable[r.index()] = false;
            }
        }
        // Rebuild plans: keep plans for untouched stages (stage ids may
        // have shifted, so recompute from the register's new body stage);
        // stage-level plans for shared stages.
        let mut reg_body_stage: HashMap<RegId, usize> = HashMap::new();
        for (si, s) in body.iter().enumerate() {
            for r in &s.regs {
                reg_body_stage.insert(*r, si);
            }
        }
        let mut new_plans: Vec<AccessPlan> = Vec::new();
        let mut shared_done: Vec<usize> = Vec::new();
        for p in &plans {
            let body_stage = if p.reg == REG_STAGE_SENTINEL {
                // Pre-existing stage-level plan (pairs atom): locate the
                // stage by its original physical id.
                (p.stage.index() - prologue_stages).min(body.len() - 1)
            } else {
                reg_body_stage[&p.reg]
            };
            if body[body_stage].regs.len() > 1 {
                if !shared_done.contains(&body_stage) {
                    shared_done.push(body_stage);
                    new_plans.push(AccessPlan {
                        stage: StageId((prologue_stages + body_stage) as u16),
                        reg: REG_STAGE_SENTINEL,
                        idx: IdxPlan::ArrayLevel,
                        pred: PredPlan::Always,
                    });
                }
            } else {
                new_plans.push(AccessPlan {
                    stage: StageId((prologue_stages + body_stage) as u16),
                    ..p.clone()
                });
            }
        }
        new_plans.sort_by_key(|p| p.stage);
        plans = new_plans;
    }

    if plans.is_empty() {
        prologue_stages = 0;
    }

    // ---- per-stage op budget ----
    for (si, s) in body.iter().enumerate() {
        if s.instrs.len() > target.max_ops_per_stage {
            return Err(CompileError::TooManyOpsInStage {
                stage: prologue_stages + si,
                needed: s.instrs.len(),
                available: target.max_ops_per_stage,
            });
        }
    }

    // A register declared but never referenced by any instruction is
    // not resident in any scheduled stage; park it in the first body
    // stage so its (initial) state still has a home. `validate()`
    // requires every register to be resident exactly where its
    // RegMeta.stage says, and the RegMeta loop below falls back to
    // body stage 0 for exactly these registers.
    if !body.is_empty() {
        for ri in 0..tac.regs.len() {
            if !body.iter().any(|s| s.regs.contains(&RegId::from(ri))) {
                body[0].regs.push(RegId::from(ri));
            }
        }
    }

    // ---- register metadata ----
    let classes = classify_atoms(&tac, &sched);
    let regs: Vec<RegMeta> = tac
        .regs
        .iter()
        .enumerate()
        .map(|(ri, r)| {
            let body_stage = body
                .iter()
                .position(|s| s.regs.contains(&RegId::from(ri)))
                .unwrap_or(0);
            RegMeta {
                name: r.name.clone(),
                size: r.size,
                init: r.init.clone(),
                stage: StageId((prologue_stages + body_stage) as u16),
                shardable: shardable[ri],
                atom_class: classes[ri],
            }
        })
        .collect();

    let mut field_names = tac.field_names.clone();
    field_names.extend(xf.extra_fields.iter().cloned());

    let prog = CompiledProgram {
        field_names,
        declared_fields: tac.declared_fields,
        regs,
        resolution: crate::program::ResolutionCode {
            instrs: xf.resolution.instrs,
            plans,
            stages: prologue_stages,
        },
        stages: body,
        tac,
        analysis: None,
    };
    debug_assert_eq!(prog.validate(), Ok(()));
    Ok(prog)
}

/// Convenience for tests: does this resolved access denote array-level
/// serialization?
pub fn is_array_level(index: u32) -> bool {
    index == INDEX_ARRAY_LEVEL
}

/// Classifies every register's stateful atom into the Banzai atom
/// hierarchy (diagnostics: which action-unit template the machine must
/// provide for this program).
fn classify_atoms(tac: &TacProgram, sched: &crate::schedule::Schedule) -> Vec<AtomClass> {
    use mp5_lang::TacInstr;
    let mut classes = vec![AtomClass::Stateless; tac.regs.len()];
    for cluster in &sched.clusters {
        let class = if cluster.regs.len() > 1 {
            AtomClass::Pairs
        } else {
            let mut reads = 0usize;
            let mut writes = 0usize;
            let mut preds: Vec<Option<mp5_lang::Operand>> = Vec::new();
            let mut alu_ops = 0usize;
            for &m in &cluster.members {
                match &tac.instrs[m] {
                    TacInstr::RegRead { pred, .. } => {
                        reads += 1;
                        if !preds.contains(pred) {
                            preds.push(*pred);
                        }
                    }
                    TacInstr::RegWrite { pred, .. } => {
                        writes += 1;
                        if !preds.contains(pred) {
                            preds.push(*pred);
                        }
                    }
                    TacInstr::Assign { .. } => alu_ops += 1,
                }
            }
            let distinct_preds = preds.iter().filter(|p| p.is_some()).count();
            match (reads, writes) {
                (_, 0) => AtomClass::Read,
                (0, _) => AtomClass::Write,
                _ if distinct_preds == 0 && alu_ops <= 2 => AtomClass::ReadModifyWrite,
                _ if distinct_preds == 0 => AtomClass::NestedIfs,
                _ if distinct_preds == 1 => AtomClass::PredicatedRmw,
                _ if distinct_preds == 2 => AtomClass::IfElseRmw,
                _ => AtomClass::NestedIfs,
            }
        };
        for &r in &cluster.regs {
            classes[r.index()] = class;
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ResolvedAccess;
    use mp5_types::Value;

    fn compiled(src: &str) -> CompiledProgram {
        compile(src, &Target::default()).unwrap()
    }

    const FIG3: &str = r#"
        struct Packet { int h1; int h2; int h3; int val; int mux; };
        int reg1[4] = {2, 4, 8, 16};
        int reg2[4] = {1, 3, 5, 7};
        int reg3[4] = {0};
        void func(struct Packet p) {
            p.val = (p.mux == 1) ? reg1[p.h1 % 4] : reg2[p.h2 % 4];
            reg3[p.h3 % 4] = (p.mux == 1)
                ? reg3[p.h3 % 4] * p.val
                : reg3[p.h3 % 4] + p.val;
        }
    "#;

    #[test]
    fn fig3_compiles_and_validates() {
        let p = compiled(FIG3);
        p.validate().unwrap();
        assert_eq!(p.regs.len(), 3);
        assert!(p.regs.iter().all(|r| r.shardable));
        assert!(p.num_stages() <= 16);
    }

    #[test]
    fn fig3_serial_execution_matches_tac() {
        let p = compiled(FIG3);
        let mut regs_c = p.initial_regs();
        let mut regs_t = p.tac.initial_regs();
        let inputs: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![i, i * 3 + 1, i * 7 + 2, 0, i % 2])
            .collect();
        for inp in &inputs {
            let mut fc = vec![0; p.num_fields()];
            fc[..inp.len()].copy_from_slice(inp);
            p.execute_serial(&mut fc, &mut regs_c);
            let mut ft = vec![0; p.tac.field_names.len()];
            ft[..inp.len()].copy_from_slice(inp);
            p.tac.execute(&mut ft, &mut regs_t);
            assert_eq!(
                &fc[..p.declared_fields],
                &ft[..p.declared_fields],
                "packet state must match TAC semantics"
            );
        }
        assert_eq!(regs_c, regs_t, "register state must match TAC semantics");
    }

    #[test]
    fn fig3_resolution_predicts_accesses() {
        let p = compiled(FIG3);
        // mux=1: accesses reg1[h1%4] and reg3[h3%4], not reg2.
        let mut f = vec![0; p.num_fields()];
        f[0] = 1; // h1
        f[2] = 2; // h3
        f[4] = 1; // mux
        let acc = p.resolve(&mut f);
        let regs: Vec<(usize, u32)> = acc.iter().map(|a| (a.reg.index(), a.index)).collect();
        assert!(regs.contains(&(0, 1)), "reg1[1] expected: {regs:?}");
        assert!(regs.contains(&(2, 2)), "reg3[2] expected: {regs:?}");
        assert!(!regs.iter().any(|&(r, _)| r == 1), "reg2 not accessed");
        // Accesses must come out in ascending stage order.
        assert!(acc.windows(2).all(|w| w[0].stage <= w[1].stage));
    }

    #[test]
    fn resolution_matches_actual_execution_accesses() {
        // The set of (reg, index) the resolver predicts must equal what
        // serial execution actually touches, for non-speculative plans.
        let p = compiled(FIG3);
        let mut regs = p.initial_regs();
        for i in 0..100i64 {
            let inp = [i * 13 % 10, i * 29 % 10, i * 7 % 10, 0, i % 2];
            let mut f = vec![0; p.num_fields()];
            f[..5].copy_from_slice(&inp);
            let predicted: Vec<(RegId, u32)> = p
                .resolve(&mut f.clone())
                .into_iter()
                .filter(|a| !a.speculative)
                .map(|a| (a.reg, a.index))
                .collect();
            let actual = p.execute_serial(&mut f, &mut regs);
            let actual: Vec<(RegId, u32)> = actual.into_iter().map(|a| (a.reg, a.index)).collect();
            let mut ps = predicted.clone();
            let mut as_ = actual.clone();
            ps.sort();
            as_.sort();
            assert_eq!(ps, as_, "resolution must predict exactly the real accesses");
        }
    }

    #[test]
    fn tiny_target_triggers_shared_stage_fallback() {
        // Three registers in a chain need >= 3 body stages + prologue;
        // a 4-stage machine forces merging, which pins registers.
        let src = "struct Packet { int h; };
             int a[4];
             int b[4];
             int c[4];
             void func(struct Packet p) {
                 a[p.h % 4] = a[p.h % 4] + 1;
                 b[p.h % 4] = b[p.h % 4] + 1;
                 c[p.h % 4] = c[p.h % 4] + 1;
             }";
        let full = compile(src, &Target::default()).unwrap();
        assert!(full.regs.iter().all(|r| r.shardable));
        let needed = full.num_stages();
        let squeezed = compile(
            src,
            &Target {
                max_stages: needed - 1,
                ..Target::default()
            },
        )
        .unwrap();
        squeezed.validate().unwrap();
        assert!(squeezed.num_stages() < needed);
        assert!(
            squeezed.regs.iter().any(|r| !r.shardable),
            "merged stages must pin their registers"
        );
        // Stage-level plan exists.
        assert!(squeezed
            .resolution
            .plans
            .iter()
            .any(|p| p.reg == REG_STAGE_SENTINEL));
        // Semantics are preserved.
        let mut r1 = full.initial_regs();
        let mut r2 = squeezed.initial_regs();
        for i in 0..20i64 {
            let mut f1 = vec![0; full.num_fields()];
            f1[0] = i;
            full.execute_serial(&mut f1, &mut r1);
            let mut f2 = vec![0; squeezed.num_fields()];
            f2[0] = i;
            squeezed.execute_serial(&mut f2, &mut r2);
        }
        assert_eq!(r1, r2);
    }

    #[test]
    fn impossible_budget_errors() {
        let err = compile(
            "struct Packet { int h; };
             int a[4];
             void func(struct Packet p) { a[p.h % 4] = a[p.h % 4] + hash2(p.h, 3); }",
            &Target::tiny(1),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TooManyStages { .. }), "{err}");
    }

    #[test]
    fn ops_budget_enforced() {
        // 20 independent ops in one stage with an 8-op budget.
        let mut body = String::new();
        for i in 0..20 {
            body.push_str(&format!("p.f{i} = p.f{i} + 1;\n"));
        }
        let mut fields = String::new();
        for i in 0..20 {
            fields.push_str(&format!("int f{i};\n"));
        }
        let src = format!(
            "struct Packet {{ {fields} }};
             void func(struct Packet p) {{ {body} }}"
        );
        let err = compile(&src, &Target::tiny(16)).unwrap_err();
        assert!(
            matches!(err, CompileError::TooManyOpsInStage { .. }),
            "{err}"
        );
    }

    #[test]
    fn lang_errors_propagate() {
        assert!(matches!(
            compile("not a program", &Target::default()),
            Err(CompileError::Lang(_))
        ));
    }

    #[test]
    fn global_counter_resolution_is_const_index() {
        let p = compiled(
            "struct Packet { int seq; };
             int count = 0;
             void func(struct Packet p) { count = count + 1; p.seq = count; }",
        );
        let mut f = vec![0; p.num_fields()];
        let acc = p.resolve(&mut f);
        assert_eq!(
            acc,
            vec![ResolvedAccess {
                stage: p.regs[0].stage,
                reg: RegId(0),
                index: 0,
                speculative: false,
            }]
        );
    }

    #[test]
    fn speculative_flag_set_for_stateful_predicate() {
        let p = compiled(
            "struct Packet { int h; };
             int gate = 1;
             int r[8];
             void func(struct Packet p) {
                 if (gate > 0) { r[p.h % 8] = 1; }
             }",
        );
        let mut f = vec![0; p.num_fields()];
        let acc = p.resolve(&mut f);
        let racc = acc.iter().find(|a| a.reg.index() == 1).unwrap();
        assert!(racc.speculative);
    }
}

#[cfg(test)]
mod atom_tests {
    use super::*;
    use crate::program::AtomClass;

    fn class_of(src: &str, reg: &str) -> AtomClass {
        let p = compile(src, &Target::default()).unwrap();
        let r = p.reg(reg).unwrap();
        p.regs[r.index()].atom_class
    }

    #[test]
    fn counter_is_rmw() {
        assert_eq!(
            class_of(
                "struct Packet { int s; };
                 int c = 0;
                 void func(struct Packet p) { c = c + 1; p.s = c; }",
                "c"
            ),
            AtomClass::ReadModifyWrite
        );
    }

    #[test]
    fn read_only_and_write_only() {
        let src = "struct Packet { int h; int o; };
             int lut[8] = {1,2,3,4,5,6,7,8};
             int log[8] = {0};
             void func(struct Packet p) {
                 p.o = lut[p.h % 8];
                 log[p.h % 8] = p.h;
             }";
        assert_eq!(class_of(src, "lut"), AtomClass::Read);
        assert_eq!(class_of(src, "log"), AtomClass::Write);
    }

    #[test]
    fn predicated_update_is_pred_rmw() {
        assert_eq!(
            class_of(
                "struct Packet { int h; int o; };
                 int r[8] = {0};
                 void func(struct Packet p) {
                     if (p.h > 4) { r[p.h % 8] = r[p.h % 8] + 1; }
                     p.o = 1;
                 }",
                "r"
            ),
            AtomClass::PredicatedRmw
        );
    }

    #[test]
    fn two_branch_update_is_ifelse_rmw() {
        // Figure 3's reg3: reads under c and !c plus an unconditional
        // write — two distinct predicates.
        assert_eq!(
            class_of(
                "struct Packet { int h; int v; int m; };
                 int r[4] = {0};
                 void func(struct Packet p) {
                     r[p.h % 4] = (p.m == 1) ? r[p.h % 4] * p.v : r[p.h % 4] + p.v;
                 }",
                "r"
            ),
            AtomClass::IfElseRmw
        );
    }

    #[test]
    fn entangled_registers_are_pairs() {
        let src = "struct Packet { int h; int o; };
             int a[4] = {0};
             int b[4] = {0};
             void func(struct Packet p) {
                 int t = a[p.h % 4] + b[p.h % 4];
                 a[p.h % 4] = t;
                 b[p.h % 4] = t;
                 p.o = t;
             }";
        assert_eq!(class_of(src, "a"), AtomClass::Pairs);
        assert_eq!(class_of(src, "b"), AtomClass::Pairs);
    }

    #[test]
    fn class_ordering_reflects_complexity() {
        assert!(AtomClass::Read < AtomClass::ReadModifyWrite);
        assert!(AtomClass::ReadModifyWrite < AtomClass::PredicatedRmw);
        assert!(AtomClass::PredicatedRmw < AtomClass::IfElseRmw);
        assert!(AtomClass::IfElseRmw < AtomClass::Pairs);
        assert_eq!(AtomClass::Pairs.to_string(), "pairs");
    }
}
