//! The PVSM-to-PVSM transformer (paper §3.3, Figure 5).
//!
//! Takes the pipelined schedule and decouples *address resolution* from
//! *stateful processing*: the logic sufficient to decide which register
//! index a packet will access (table match, predicate, index
//! computation) is hoisted into a prologue at the head of the pipeline,
//! followed by a phantom-generation stage; the state manipulation stays
//! in its original stage.
//!
//! The three hard cases of §3.3 are handled exactly as the paper
//! prescribes:
//!
//! * **Stateful predicate** (`if (reg1[0]) {...}`): the predicate cannot
//!   be evaluated preemptively, so MP5 "conservatively assumes that the
//!   predicate would evaluate to true" and generates a *speculative*
//!   phantom; a false outcome costs one wasted cycle at the stateful
//!   stage ([`PredPlan::Speculative`]).
//! * **Stateful index** (`reg1[reg2[0]]`): the index cannot be computed
//!   preemptively, so "MP5 ... maps the entire register array to a
//!   single pipeline, i.e., effectively no state sharding"
//!   ([`IdxPlan::ArrayLevel`] + `shardable = false`).
//! * **Multiple distinct indexes of one array** (e.g. speculative
//!   `if/else` branches touching `reg[i]` and `reg[j]`): the two indexes
//!   could be sharded to different pipelines, but a packet can only be
//!   in one pipeline at a time, so the array is pinned
//!   (`shardable = false`) while keeping exact per-index phantoms where
//!   the predicates are resolvable.

use std::collections::BTreeSet;

use mp5_lang::ast::BinOp;
use mp5_lang::tac::{TacInstr, TacProgram};
use mp5_lang::{Operand, TacExpr};
use mp5_types::{FieldId, StageId};

use crate::program::{AccessPlan, IdxPlan, PredPlan, ResolutionCode};
use crate::schedule::Schedule;
use crate::slice::Slicer;

/// Output of the transformer: the resolution prologue plus per-register
/// shardability verdicts (indexed like `tac.regs`).
#[derive(Debug, Clone)]
pub struct TransformResult {
    /// The resolution prologue (instrs, plans, stage count).
    pub resolution: ResolutionCode,
    /// Whether each register array may be sharded across pipelines.
    pub shardable: Vec<bool>,
    /// Extra metadata field names created for synthesized predicate
    /// combinations (appended after `tac.field_names`).
    pub extra_fields: Vec<String>,
}

/// One register access site extracted from the TAC.
#[derive(Debug, Clone)]
struct AccessSite {
    pos: usize,
    idx: Operand,
    pred: Option<Operand>,
}

/// Runs the transformation.
///
/// `stage_base` maps a PVSM stage to its physical stage id (the body
/// offset after the prologue is sized, so the caller passes a closure).
pub fn transform(tac: &TacProgram, schedule: &Schedule, max_chain_depth: usize) -> TransformResult {
    let slicer = Slicer::new(tac);
    let mut slice_set: BTreeSet<usize> = BTreeSet::new();
    let mut extra_fields: Vec<String> = Vec::new();
    let mut synth: Vec<TacInstr> = Vec::new();
    let mut shardable = vec![true; tac.regs.len()];

    // Plans in PVSM-stage order (phantom generation order).
    let mut staged_plans: Vec<(usize, AccessPlan)> = Vec::new();

    let fresh_field = |extra_fields: &mut Vec<String>| -> FieldId {
        let id = FieldId::from(tac.field_names.len() + extra_fields.len());
        extra_fields.push(format!("$res{}", extra_fields.len()));
        id
    };

    for cluster in &schedule.clusters {
        if cluster.regs.len() > 1 {
            // A pairs-class atom: the registers are entangled by shared
            // dataflow, so they co-reside in one stage, are pinned to
            // one pipeline, and every packet that might touch them
            // serializes through a single stage-level phantom.
            for &r in &cluster.regs {
                shardable[r.index()] = false;
            }
            staged_plans.push((
                cluster.stage,
                AccessPlan {
                    stage: StageId(0),
                    reg: crate::program::REG_STAGE_SENTINEL,
                    idx: IdxPlan::ArrayLevel,
                    pred: PredPlan::Always,
                },
            ));
            continue;
        }
        let reg = cluster.regs[0];
        // Collect the access sites for this register.
        let mut sites: Vec<AccessSite> = Vec::new();
        for &m in &cluster.members {
            match &tac.instrs[m] {
                TacInstr::RegRead { idx, pred, .. } | TacInstr::RegWrite { idx, pred, .. } => {
                    sites.push(AccessSite {
                        pos: m,
                        idx: *idx,
                        pred: *pred,
                    });
                }
                _ => {}
            }
        }
        debug_assert!(!sites.is_empty());

        // Group sites by syntactic index operand (CSE makes equal
        // indexes literally identical operands).
        let mut groups: Vec<(Operand, Vec<AccessSite>)> = Vec::new();
        for s in sites {
            match groups.iter_mut().find(|(op, _)| *op == s.idx) {
                Some((_, v)) => v.push(s),
                None => groups.push((s.idx, vec![s])),
            }
        }

        // Try to slice every index and predicate.
        let mut group_plans: Vec<(IdxPlan, PredPlan)> = Vec::new();
        let mut all_resolvable = true;
        for (idx_op, sites) in &groups {
            let idx_plan = {
                let mut tmp = slice_set.clone();
                if slicer.slice_operand(*idx_op, sites[0].pos, &mut tmp) {
                    slice_set = tmp;
                    IdxPlan::Exact(*idx_op)
                } else {
                    all_resolvable = false;
                    IdxPlan::ArrayLevel
                }
            };
            // Union predicate across the group's sites.
            let mut pred_ops: Vec<Operand> = Vec::new();
            let mut always = false;
            let mut speculative = false;
            for s in sites {
                match s.pred {
                    None => always = true,
                    Some(p) => {
                        let mut tmp = slice_set.clone();
                        if slicer.slice_operand(p, s.pos, &mut tmp) {
                            slice_set = tmp;
                            if !pred_ops.contains(&p) {
                                pred_ops.push(p);
                            }
                        } else {
                            speculative = true;
                        }
                    }
                }
            }
            let pred_plan = if always {
                PredPlan::Always
            } else if speculative {
                all_resolvable = false;
                PredPlan::Speculative
            } else if pred_ops.len() == 1 {
                PredPlan::Exact(pred_ops[0])
            } else {
                // Synthesize OR of the predicates in the prologue.
                let mut acc = pred_ops[0];
                for &p in &pred_ops[1..] {
                    let dst = fresh_field(&mut extra_fields);
                    synth.push(TacInstr::Assign {
                        dst,
                        expr: TacExpr::Binary(BinOp::Or, acc, p),
                    });
                    acc = Operand::Field(dst);
                }
                PredPlan::Exact(acc)
            };
            group_plans.push((idx_plan, pred_plan));
        }

        // Decide shardability and final plans for this register.
        if groups.len() == 1 {
            let (idx_plan, pred_plan) = group_plans.pop().unwrap();
            if matches!(idx_plan, IdxPlan::ArrayLevel) {
                shardable[reg.index()] = false;
            }
            staged_plans.push((
                cluster.stage,
                AccessPlan {
                    stage: StageId(0), // physical stage filled below
                    reg,
                    idx: idx_plan,
                    pred: pred_plan,
                },
            ));
        } else {
            // Multiple distinct indexes of one array: pin the array.
            shardable[reg.index()] = false;
            if all_resolvable {
                // Exact per-index phantoms, all destined to the pinned
                // pipeline.
                for (idx_plan, pred_plan) in group_plans {
                    staged_plans.push((
                        cluster.stage,
                        AccessPlan {
                            stage: StageId(0),
                            reg,
                            idx: idx_plan,
                            pred: pred_plan,
                        },
                    ));
                }
            } else {
                // Fall all the way back: one array-level phantom per
                // packet, unconditional.
                staged_plans.push((
                    cluster.stage,
                    AccessPlan {
                        stage: StageId(0),
                        reg,
                        idx: IdxPlan::ArrayLevel,
                        pred: PredPlan::Always,
                    },
                ));
            }
        }
    }

    // Assemble the prologue instruction list: the union slice in
    // original program order, then synthesized predicate combinators.
    let mut instrs: Vec<TacInstr> = slice_set.iter().map(|&i| tac.instrs[i].clone()).collect();
    instrs.extend(synth);

    // Size the prologue: the slice instructions re-scheduled with the
    // same chain-depth rule, plus one stage for phantom generation.
    // (Prologue instructions are pure Assigns, so a simple chain-depth
    // pass suffices.)
    let comp_stages = prologue_stages(&instrs, tac, max_chain_depth);
    let stages = if staged_plans.is_empty() {
        0
    } else {
        comp_stages + 1
    };

    // Fill physical stage ids and sort plans by stage.
    let mut plans: Vec<AccessPlan> = staged_plans
        .into_iter()
        .map(|(pvsm_stage, mut plan)| {
            plan.stage = StageId((stages + pvsm_stage) as u16);
            plan
        })
        .collect();
    plans.sort_by_key(|p| p.stage);

    TransformResult {
        resolution: ResolutionCode {
            instrs,
            plans,
            stages,
        },
        shardable,
        extra_fields,
    }
}

/// Stage count needed by the prologue computation, under the chain-depth
/// rule (dependent ops deeper than `maxd` spill to the next stage).
fn prologue_stages(instrs: &[TacInstr], tac: &TacProgram, maxd: usize) -> usize {
    if instrs.is_empty() {
        return 0;
    }
    let maxd = maxd.max(1);
    let mut total_fields = tac.field_names.len();
    for ins in instrs {
        if let TacInstr::Assign { dst, .. } = ins {
            total_fields = total_fields.max(dst.index() + 1);
        }
    }
    let mut avail: Vec<(usize, usize)> = vec![(0, 0); total_fields];
    let mut max_stage = 0;
    for ins in instrs {
        if let TacInstr::Assign { dst, expr } = ins {
            let mut s = 0usize;
            let mut d = 1usize;
            for o in expr.operands() {
                if let Operand::Field(f) = o {
                    let (ps, pd) = avail[f.index()];
                    let (cs, cd) = if pd < maxd { (ps, pd + 1) } else { (ps + 1, 1) };
                    if cs > s {
                        s = cs;
                        d = cd;
                    } else if cs == s {
                        d = d.max(cd);
                    }
                }
            }
            avail[dst.index()] = (s, d);
            max_stage = max_stage.max(s);
        }
    }
    max_stage + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::pipeline;
    use mp5_lang::frontend;

    fn xform(src: &str) -> (TacProgram, TransformResult) {
        let tac = frontend(src).unwrap();
        let sched = pipeline(&tac, 4).unwrap();
        let res = transform(&tac, &sched, 4);
        (tac, res)
    }

    #[test]
    fn pure_index_yields_exact_plan() {
        let (_, r) = xform(
            "struct Packet { int h; };
             int r[8];
             void func(struct Packet p) { r[p.h % 8] = r[p.h % 8] + 1; }",
        );
        assert_eq!(r.resolution.plans.len(), 1);
        assert!(matches!(r.resolution.plans[0].idx, IdxPlan::Exact(_)));
        assert!(matches!(r.resolution.plans[0].pred, PredPlan::Always));
        assert!(r.shardable[0]);
        assert!(r.resolution.stages >= 2, "compute + phantom-gen stages");
    }

    #[test]
    fn stateful_predicate_is_speculative() {
        let (_, r) = xform(
            "struct Packet { int h; };
             int gate = 0;
             int r[8];
             void func(struct Packet p) {
                 if (gate > 0) { r[p.h % 8] = 1; }
             }",
        );
        let plan_r = r
            .resolution
            .plans
            .iter()
            .find(|p| p.reg.index() == 1)
            .unwrap();
        assert!(matches!(plan_r.pred, PredPlan::Speculative));
        assert!(matches!(plan_r.idx, IdxPlan::Exact(_)));
        assert!(r.shardable[1], "index is still exact, so sharding is fine");
    }

    #[test]
    fn stateful_index_pins_array() {
        let (_, r) = xform(
            "struct Packet { int h; };
             int ptr = 0;
             int r[8];
             void func(struct Packet p) { r[ptr % 8] = 1; }",
        );
        let plan_r = r
            .resolution
            .plans
            .iter()
            .find(|p| p.reg.index() == 1)
            .unwrap();
        assert!(matches!(plan_r.idx, IdxPlan::ArrayLevel));
        assert!(!r.shardable[1], "stateful index => no sharding");
    }

    #[test]
    fn ternary_branches_get_exact_predicated_plans() {
        let (_, r) = xform(
            "struct Packet { int m; int h1; int h2; int v; };
             int a[4];
             int b[4];
             void func(struct Packet p) {
                 p.v = (p.m == 1) ? a[p.h1 % 4] : b[p.h2 % 4];
             }",
        );
        assert_eq!(r.resolution.plans.len(), 2);
        for p in &r.resolution.plans {
            assert!(matches!(p.idx, IdxPlan::Exact(_)));
            assert!(matches!(p.pred, PredPlan::Exact(_)));
        }
        assert!(r.shardable[0] && r.shardable[1]);
    }

    #[test]
    fn rmw_with_branch_preds_unions_to_always() {
        // Figure 3's reg3: reads under c and !c plus an unconditional
        // write — the union predicate must be Always.
        let (_, r) = xform(
            "struct Packet { int h3; int val; int mux; };
             int reg3[4] = {0};
             void func(struct Packet p) {
                 reg3[p.h3 % 4] = (p.mux == 1)
                     ? reg3[p.h3 % 4] * p.val
                     : reg3[p.h3 % 4] + p.val;
             }",
        );
        assert_eq!(r.resolution.plans.len(), 1);
        assert!(matches!(r.resolution.plans[0].pred, PredPlan::Always));
        assert!(r.shardable[0]);
    }

    #[test]
    fn distinct_indexes_pin_array_but_keep_exact_plans() {
        let (_, r) = xform(
            "struct Packet { int m; int i; int j; };
             int r[8];
             void func(struct Packet p) {
                 if (p.m == 1) { r[p.i % 8] = 1; } else { r[p.j % 8] = 2; }
             }",
        );
        assert!(!r.shardable[0], "two indexes may shard apart: pin");
        assert_eq!(r.resolution.plans.len(), 2);
        for p in &r.resolution.plans {
            assert!(matches!(p.idx, IdxPlan::Exact(_)));
            assert!(matches!(p.pred, PredPlan::Exact(_)));
        }
    }

    #[test]
    fn stateless_program_needs_no_prologue() {
        let (_, r) = xform(
            "struct Packet { int a; int b; };
             void func(struct Packet p) { p.b = p.a + 1; }",
        );
        assert_eq!(r.resolution.stages, 0);
        assert!(r.resolution.plans.is_empty());
        assert!(r.resolution.instrs.is_empty());
    }

    #[test]
    fn plans_sorted_by_stage() {
        let (_, r) = xform(
            "struct Packet { int h; };
             int a[4];
             int b[4];
             void func(struct Packet p) {
                 int v = a[p.h % 4];
                 b[v % 4] = v;
             }",
        );
        // b's index depends on a's value: b unshardable, a shardable.
        assert!(r.shardable[0]);
        assert!(!r.shardable[1]);
        assert!(r
            .resolution
            .plans
            .windows(2)
            .all(|w| w[0].stage <= w[1].stage));
    }
}
