//! Structured pre-codegen program analysis report (data model).
//!
//! The *analyzer* that fills this in lives in the `mp5-analysis` crate
//! (it runs between TAC and code generation); only the data model lives
//! here, so that [`crate::compile_with_options`] can attach a report to
//! [`crate::CompiledProgram`] without a dependency cycle between the
//! compiler and the analyzer.
//!
//! The report answers, *before* code generation, the three questions the
//! paper's compilability story hinges on:
//!
//! 1. **Shardability** (§3.3): can each register array be dynamically
//!    sharded across pipelines (design principle D2), or must it be
//!    pinned to one pipeline — and *which TAC instructions* force the
//!    pinning?
//! 2. **Hazards / D4 preconditions**: is every stateful access's address
//!    resolvable in the prologue, and does the phantom-packet plan cover
//!    every stateful stage so serial order can be frozen pre-emptively?
//! 3. **Resource pressure**: how many stages / operations / SRAM bits
//!    will the program need versus what the [`crate::Target`] provides,
//!    with the codegen fallback (tail-stage merging) simulated so the
//!    prediction matches what `compile` will actually do.

use mp5_lang::Diagnostic;
use mp5_types::RegId;

/// Signature of a pre-codegen analyzer pluggable into
/// [`crate::CompileOptions::analyzer`].
///
/// A plain function pointer (not a trait object) so `CompileOptions`
/// keeps its `Clone + PartialEq + Eq` derives.
pub type AnalyzerFn = fn(&mp5_lang::TacProgram, &crate::Target) -> AnalysisReport;

/// Why (or whether) a register array can be dynamically sharded across
/// pipelines (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShardClass {
    /// The array's slots can be distributed across per-pipeline shards:
    /// every access resolves to one exact, header-derived index in the
    /// prologue.
    Shardable,
    /// A stateful *index* computation (the address depends on register
    /// state) makes the address unresolvable in the prologue; the array
    /// is pinned to one pipeline and serialized at array granularity.
    PinnedStatefulIndex,
    /// The array shares a stage with other arrays (a Banzai pairs-class
    /// atom, or codegen's shared-stage fallback, or multiple distinct
    /// resolvable indexes) and the co-resident group is pinned together.
    PinnedCoResident,
    /// A stateful *predicate* combined with multiple access sites keeps
    /// the taken set unresolvable; the array is pinned rather than
    /// speculatively phantomed.
    PinnedStatefulPredicate,
}

impl ShardClass {
    /// `true` only for [`ShardClass::Shardable`].
    pub fn is_shardable(self) -> bool {
        matches!(self, ShardClass::Shardable)
    }

    /// Stable machine-readable name (used by JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardClass::Shardable => "shardable",
            ShardClass::PinnedStatefulIndex => "pinned-stateful-index",
            ShardClass::PinnedCoResident => "pinned-co-resident",
            ShardClass::PinnedStatefulPredicate => "pinned-stateful-predicate",
        }
    }
}

impl std::fmt::Display for ShardClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Analysis result for one register array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAnalysis {
    /// Which register array.
    pub reg: RegId,
    /// Its source name.
    pub name: String,
    /// Element count.
    pub size: u32,
    /// Shardability classification.
    pub class: ShardClass,
    /// TAC instruction positions (indexes into `TacProgram::instrs`)
    /// responsible for a pinned classification. Empty for `Shardable`.
    pub culprits: Vec<usize>,
    /// Whether the access uses a *speculative* phantom plan (stateful
    /// predicate resolved by phantoming both branches — shardable, but
    /// worth surfacing as a performance note).
    pub speculative: bool,
    /// Whether the D4 phantom plan covers this array's stateful stage
    /// (an uncovered stage means serial order cannot be frozen).
    pub covered: bool,
}

/// Predicted resource consumption versus a [`crate::Target`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureEstimate {
    /// Address-resolution prologue stages the transform will emit.
    pub prologue_stages: usize,
    /// Body stages *after* simulating codegen's tail-merge fallback.
    pub body_stages: usize,
    /// Total physical stages (`prologue + body`).
    pub total_stages: usize,
    /// Stage budget of the target.
    pub max_stages: usize,
    /// Largest per-stage operation count after merging.
    pub peak_stage_ops: usize,
    /// Per-stage operation budget of the target.
    pub max_ops_per_stage: usize,
    /// Body-stage merges the codegen fallback will perform (each merge
    /// pins the co-resident arrays of the merged stage).
    pub predicted_merges: usize,
    /// SRAM bits per register array (data + per-index metadata).
    pub sram_bits: Vec<u64>,
    /// Per-stage SRAM budget of the target.
    pub max_sram_bits_per_stage: u64,
    /// Whether the program fits the target on every axis.
    pub fits: bool,
}

/// The full pre-codegen analysis report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    /// Per-register shardability and coverage results, indexed by
    /// [`RegId`].
    pub regs: Vec<RegAnalysis>,
    /// Resource-pressure estimate; `None` when the program could not be
    /// scheduled at all (the diagnostics then explain why).
    pub pressure: Option<PressureEstimate>,
    /// All findings, in program order (by source span, then code).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Does any finding have error severity?
    pub fn has_errors(&self) -> bool {
        mp5_lang::diag::has_errors(&self.diagnostics)
    }

    /// Number of findings at warning severity or above.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= mp5_lang::Severity::Warning)
            .count()
    }

    /// Looks up the analysis entry for a register by name.
    pub fn reg_by_name(&self, name: &str) -> Option<&RegAnalysis> {
        self.regs.iter().find(|r| r.name == name)
    }

    /// How many arrays the analyzer classified as shardable.
    pub fn shardable_count(&self) -> usize {
        self.regs.iter().filter(|r| r.class.is_shardable()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_class_names_are_stable() {
        assert_eq!(ShardClass::Shardable.to_string(), "shardable");
        assert_eq!(
            ShardClass::PinnedStatefulIndex.to_string(),
            "pinned-stateful-index"
        );
        assert_eq!(
            ShardClass::PinnedCoResident.to_string(),
            "pinned-co-resident"
        );
        assert_eq!(
            ShardClass::PinnedStatefulPredicate.to_string(),
            "pinned-stateful-predicate"
        );
        assert!(ShardClass::Shardable.is_shardable());
        assert!(!ShardClass::PinnedCoResident.is_shardable());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = AnalysisReport::default();
        assert!(!r.has_errors());
        assert_eq!(r.warning_count(), 0);
        assert_eq!(r.shardable_count(), 0);
        assert!(r.reg_by_name("x").is_none());
    }
}
