//! The compiled program representation executed by every switch model.

use mp5_lang::tac::{StateAccess, TacInstr};
use mp5_lang::{Operand, TacProgram};
use mp5_types::{RegId, StageId, Value};

/// Sentinel register id for *stage-level* access plans (used when code
/// generation had to co-locate several register arrays in one stage and
/// serialize every packet through it).
pub const REG_STAGE_SENTINEL: RegId = RegId(u16::MAX);

/// Sentinel index meaning "the whole array" (array-level phantom for
/// pinned registers whose concrete index cannot be resolved
/// preemptively).
pub const INDEX_ARRAY_LEVEL: u32 = u32::MAX;

/// Metadata about a register array in the compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct RegMeta {
    /// Source name.
    pub name: String,
    /// Element count.
    pub size: u32,
    /// Initial contents.
    pub init: Vec<Value>,
    /// Physical stage holding this array.
    pub stage: StageId,
    /// Whether MP5 may shard this array's indexes across pipelines (D2).
    /// `false` = pinned to one pipeline (§3.3's conservative fallbacks).
    pub shardable: bool,
    /// The Banzai atom class this array's stateful stage requires.
    pub atom_class: AtomClass,
}

/// Code for one physical *body* stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCode {
    /// Instructions executed, in order, when a packet is processed by
    /// this stage.
    pub instrs: Vec<TacInstr>,
    /// Register arrays resident in this stage. Empty = stateless stage.
    /// More than one only in the pinned shared-stage fallback.
    pub regs: Vec<RegId>,
}

/// How the resolution stage computes an access's register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxPlan {
    /// The index is this (stateless) operand, available at resolution.
    Exact(Operand),
    /// The index computation is stateful (§3.3): the array is pinned and
    /// serialized at array granularity.
    ArrayLevel,
}

/// How the resolution stage decides whether the access happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredPlan {
    /// Unconditional access.
    Always,
    /// Access iff this (stateless) operand is non-zero.
    Exact(Operand),
    /// The predicate is stateful (§3.3): conservatively assume true and
    /// generate a *speculative* phantom; a false outcome wastes one
    /// cycle at the stateful stage.
    Speculative,
}

/// One planned state access, evaluated per packet by the address
/// resolution stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPlan {
    /// Physical stage of the access.
    pub stage: StageId,
    /// Register array ([`REG_STAGE_SENTINEL`] for stage-level plans).
    pub reg: RegId,
    /// Index resolution.
    pub idx: IdxPlan,
    /// Predicate resolution.
    pub pred: PredPlan,
}

/// A concrete access produced by running the resolution program on one
/// packet. This is what becomes a phantom packet + metadata tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedAccess {
    /// Physical stage of the access.
    pub stage: StageId,
    /// Register array ([`REG_STAGE_SENTINEL`] for stage-level).
    pub reg: RegId,
    /// Concrete wrapped index, or [`INDEX_ARRAY_LEVEL`].
    pub index: u32,
    /// True if generated under an unresolvable predicate (may be
    /// discarded at the stateful stage, wasting a cycle).
    pub speculative: bool,
}

/// The address resolution prologue (paper Figure 5, the stages the
/// PVSM-to-PVSM transformer prepends).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResolutionCode {
    /// Stateless instruction slice computing all index and predicate
    /// operands.
    pub instrs: Vec<TacInstr>,
    /// Access plans, ordered by ascending stage.
    pub plans: Vec<AccessPlan>,
    /// Physical stages the prologue occupies (computation stages plus
    /// the phantom-generation stage).
    pub stages: usize,
}

/// A fully compiled packet-processing program.
///
/// Design principle D1: this single artifact is replicated identically
/// onto every pipeline of the MP5 switch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// All field names (declared packet fields first, then metadata).
    pub field_names: Vec<String>,
    /// Leading count of *declared* packet header fields.
    pub declared_fields: usize,
    /// Register arrays.
    pub regs: Vec<RegMeta>,
    /// Address resolution prologue.
    pub resolution: ResolutionCode,
    /// Body stages; body stage `i` is physical stage
    /// `resolution.stages + i`.
    pub stages: Vec<StageCode>,
    /// The three-address program this was compiled from (kept for
    /// diagnostics and cross-validation).
    pub tac: TacProgram,
    /// Pre-codegen analysis report, when compilation ran with
    /// [`crate::CompileOptions::analyzer`] set (otherwise `None`).
    pub analysis: Option<crate::report::AnalysisReport>,
}

impl CompiledProgram {
    /// Total physical stages (prologue + body).
    pub fn num_stages(&self) -> usize {
        self.resolution.stages + self.stages.len()
    }

    /// Field id lookup by name.
    pub fn field(&self, name: &str) -> Option<mp5_types::FieldId> {
        self.field_names
            .iter()
            .position(|n| n == name)
            .map(mp5_types::FieldId::from)
    }

    /// Register id lookup by name.
    pub fn reg(&self, name: &str) -> Option<RegId> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(RegId::from)
    }

    /// Fresh register state.
    pub fn initial_regs(&self) -> Vec<Vec<Value>> {
        self.regs.iter().map(|r| r.init.clone()).collect()
    }

    /// Number of fields a packet needs.
    pub fn num_fields(&self) -> usize {
        self.field_names.len()
    }

    /// Physical stage id of the first body stage.
    pub fn first_body_stage(&self) -> StageId {
        StageId(self.resolution.stages as u16)
    }

    /// Runs the address resolution program on a packet's fields,
    /// returning the accesses for which phantoms/tags are generated
    /// (ordered by ascending stage, generation order).
    ///
    /// Mutates `fields`: resolution temporaries are metadata carried in
    /// the packet, exactly like the paper's `p.metadata.add(...)`.
    pub fn resolve(&self, fields: &mut [Value]) -> Vec<ResolvedAccess> {
        let mut out = Vec::new();
        self.resolve_into(fields, &mut out);
        out
    }

    /// [`CompiledProgram::resolve`] into a caller-owned buffer
    /// (cleared first), so per-packet resolution on the hot path
    /// allocates nothing once the buffer reaches steady-state size.
    pub fn resolve_into(&self, fields: &mut [Value], out: &mut Vec<ResolvedAccess>) {
        out.clear();
        for ins in &self.resolution.instrs {
            match ins {
                TacInstr::Assign { dst, expr } => fields[dst.index()] = expr.eval(fields),
                _ => unreachable!("resolution slice is stateless by construction"),
            }
        }
        let opval = |o: &Operand| match o {
            Operand::Const(v) => *v,
            Operand::Field(f) => fields[f.index()],
        };
        for plan in &self.resolution.plans {
            let (generate, speculative) = match plan.pred {
                PredPlan::Always => (true, false),
                PredPlan::Exact(p) => (opval(&p) != 0, false),
                PredPlan::Speculative => (true, true),
            };
            if !generate {
                continue;
            }
            let index = match plan.idx {
                IdxPlan::Exact(op) => {
                    let size = self.regs[plan.reg.index()].size;
                    TacProgram::wrap_index(size, opval(&op))
                }
                IdxPlan::ArrayLevel => INDEX_ARRAY_LEVEL,
            };
            // Two plans of one register may resolve to the same concrete
            // index (e.g. `r[p.a % 1]` and `r[p.b % 1]`). A packet holds
            // one queue slot per state, and duplicate phantom keys would
            // collide in the FIFO directory — merge them. A merged access
            // is speculative only if every constituent was.
            if let Some(prev) = out.iter_mut().find(|a: &&mut ResolvedAccess| {
                a.stage == plan.stage && a.reg == plan.reg && a.index == index
            }) {
                prev.speculative &= speculative;
                continue;
            }
            out.push(ResolvedAccess {
                stage: plan.stage,
                reg: plan.reg,
                index,
                speculative,
            });
        }
    }

    /// Executes one body stage on a packet's fields against register
    /// state, returning the state accesses actually performed.
    pub fn execute_stage(
        &self,
        body_stage: usize,
        fields: &mut [Value],
        regs: &mut [Vec<Value>],
    ) -> Vec<StateAccess> {
        let mut accesses = Vec::new();
        let stage = &self.stages[body_stage];
        for ins in &stage.instrs {
            exec_instr(ins, fields, regs, &self.regs, &mut accesses);
        }
        accesses.dedup();
        accesses
    }

    /// Executes the whole program serially on one packet (resolution
    /// prologue then all body stages). Reference semantics: must agree
    /// with [`TacProgram::execute`] on declared fields and registers.
    pub fn execute_serial(
        &self,
        fields: &mut [Value],
        regs: &mut [Vec<Value>],
    ) -> Vec<StateAccess> {
        self.resolve(fields);
        let mut all = Vec::new();
        for i in 0..self.stages.len() {
            all.extend(self.execute_stage(i, fields, regs));
        }
        all.dedup();
        all
    }

    /// Structural validation; returns a description of the first
    /// inconsistency, if any. Exercised by tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        // Every register appears in exactly one stage's resident list,
        // matching its RegMeta.stage.
        for (i, r) in self.regs.iter().enumerate() {
            let body = (r.stage.index())
                .checked_sub(self.resolution.stages)
                .ok_or_else(|| format!("reg {} stage inside prologue", r.name))?;
            let sc = self
                .stages
                .get(body)
                .ok_or_else(|| format!("reg {} stage out of range", r.name))?;
            if !sc.regs.contains(&RegId::from(i)) {
                return Err(format!("reg {} not resident in its stage", r.name));
            }
        }
        // Stateful instructions only in stages where the reg is resident.
        for (si, sc) in self.stages.iter().enumerate() {
            for ins in &sc.instrs {
                if let TacInstr::RegRead { reg, .. } | TacInstr::RegWrite { reg, .. } = ins {
                    if !sc.regs.contains(reg) {
                        return Err(format!(
                            "stage {si} touches reg {} not resident there",
                            self.regs[reg.index()].name
                        ));
                    }
                }
            }
        }
        // Plans reference valid stages/regs.
        for p in &self.resolution.plans {
            if p.reg != REG_STAGE_SENTINEL && p.reg.index() >= self.regs.len() {
                return Err("plan references unknown reg".into());
            }
            if p.stage.index() < self.resolution.stages || p.stage.index() >= self.num_stages() {
                return Err("plan stage out of range".into());
            }
        }
        // Plans are sorted by stage (phantom generation order).
        if !self
            .resolution
            .plans
            .windows(2)
            .all(|w| w[0].stage <= w[1].stage)
        {
            return Err("plans not sorted by stage".into());
        }
        Ok(())
    }
}

/// Executes one instruction against fields + register state.
fn exec_instr(
    ins: &TacInstr,
    fields: &mut [Value],
    regs: &mut [Vec<Value>],
    meta: &[RegMeta],
    accesses: &mut Vec<StateAccess>,
) {
    let opval = |o: &Operand, fields: &[Value]| match o {
        Operand::Const(v) => *v,
        Operand::Field(f) => fields[f.index()],
    };
    match ins {
        TacInstr::Assign { dst, expr } => fields[dst.index()] = expr.eval(fields),
        TacInstr::RegRead {
            dst,
            reg,
            idx,
            pred,
        } => {
            let taken = pred.as_ref().is_none_or(|p| opval(p, fields) != 0);
            if taken {
                let size = meta[reg.index()].size;
                let i = TacProgram::wrap_index(size, opval(idx, fields));
                fields[dst.index()] = regs[reg.index()][i as usize];
                accesses.push(StateAccess {
                    reg: *reg,
                    index: i,
                });
            } else {
                fields[dst.index()] = 0;
            }
        }
        TacInstr::RegWrite {
            reg,
            idx,
            val,
            pred,
        } => {
            let taken = pred.as_ref().is_none_or(|p| opval(p, fields) != 0);
            if taken {
                let size = meta[reg.index()].size;
                let i = TacProgram::wrap_index(size, opval(idx, fields));
                regs[reg.index()][i as usize] = opval(val, fields);
                accesses.push(StateAccess {
                    reg: *reg,
                    index: i,
                });
            }
        }
    }
}

/// Banzai stateful-atom classes, ordered by increasing circuit
/// complexity (the atom hierarchy of the Domino paper, which the MP5
/// paper's action units inherit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomClass {
    /// No state touched.
    Stateless,
    /// State is only read.
    Read,
    /// State is only written (from packet fields/constants).
    Write,
    /// Unconditional read-modify-write through a short ALU chain
    /// (Banzai's `rw`/`addr` atoms).
    ReadModifyWrite,
    /// Read-modify-write under a single predicate (`predraw`).
    PredicatedRmw,
    /// Two-way predicated update (`ifelse_raw`).
    IfElseRmw,
    /// Deeper conditional circuits (`nested_ifs`).
    NestedIfs,
    /// Multiple entangled register arrays updated atomically (`pairs`).
    Pairs,
}

impl std::fmt::Display for AtomClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AtomClass::Stateless => "stateless",
            AtomClass::Read => "read",
            AtomClass::Write => "write",
            AtomClass::ReadModifyWrite => "rmw",
            AtomClass::PredicatedRmw => "pred-rmw",
            AtomClass::IfElseRmw => "ifelse-rmw",
            AtomClass::NestedIfs => "nested-ifs",
            AtomClass::Pairs => "pairs",
        };
        f.write_str(s)
    }
}
