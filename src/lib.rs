//! # MP5 — Stateful Multi-Pipelined Programmable Switches
//!
//! A full Rust implementation of the system described in *"Stateful
//! Multi-Pipelined Programmable Switches"* (Vishal Shrivastav, SIGCOMM
//! 2022): a switch architecture, compiler, and runtime that makes a
//! `k`-pipeline programmable switch functionally equivalent to a
//! logical single-pipeline switch while processing packets close to the
//! ideal rate.
//!
//! ## Quick start
//!
//! ```
//! use mp5::compiler::{compile, Target};
//! use mp5::banzai::BanzaiSwitch;
//! use mp5::core::{Mp5Switch, SwitchConfig};
//! use mp5::traffic::TraceBuilder;
//!
//! // 1. Write a stateful packet-processing program (Domino-like DSL).
//! let program = compile(
//!     "struct Packet { int h; int out; };
//!      int counters[64] = {0};
//!      void func(struct Packet p) {
//!          counters[p.h % 64] = counters[p.h % 64] + 1;
//!          p.out = counters[p.h % 64];
//!      }",
//!     &Target::default(),
//! ).unwrap();
//!
//! // 2. Generate a line-rate trace on a 64-port switch.
//! let trace = TraceBuilder::new(2_000, 7).build(program.num_fields(), |rng, _, f| {
//!     use rand::Rng;
//!     f[0] = rng.gen_range(0..1_000);
//! });
//!
//! // 3. Run it on the single-pipeline reference and on 4-pipeline MP5.
//! let reference = BanzaiSwitch::new(program.clone()).run(trace.clone());
//! let report = Mp5Switch::new(program, SwitchConfig::mp5(4)).run(trace);
//!
//! // Functional equivalence (the paper's §2.2.1 definition) holds...
//! assert!(report.result.equivalent_to(&reference));
//! // ...and the sharded counter table runs near line rate.
//! assert!(report.normalized_throughput() > 0.5);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `mp5-types` | Packets, ids, the byte-time clock model |
//! | [`lang`] | `mp5-lang` | Domino-like DSL frontend (lexer → parser → three-address code) |
//! | [`compiler`] | `mp5-compiler` | Pipelining, PVSM, the PVSM-to-PVSM transformer, codegen |
//! | [`analysis`] | `mp5-analysis` | Static shardability / hazard / resource analyzer + `mp5lint` |
//! | [`banzai`] | `mp5-banzai` | Single-pipeline reference switch (equivalence ground truth) |
//! | [`trace`] | `mp5-trace` | Event tracing: sinks, Perfetto export, rollups, `mp5audit` offline auditor |
//! | [`fabric`] | `mp5-fabric` | Ring buffers, logical k-FIFOs + phantom directory, crossbars, phantom channel |
//! | [`faults`] | `mp5-faults` | Deterministic fault plans, chaos generator, zero-cost `FaultInjector` hooks |
//! | [`core`] | `mp5-core` | **The MP5 switch**: architecture + runtime (steering, phantoms, dynamic sharding) |
//! | [`baselines`] | `mp5-baselines` | Naive / static-shard / no-D4 / ideal / recirculation baselines |
//! | [`traffic`] | `mp5-traffic` | Line-rate arrivals, access patterns, Web-search flows |
//! | [`apps`] | `mp5-apps` | Flowlet, CONGA, WFQ, sequencer + four more stateful programs |
//! | [`asic`] | `mp5-asic` | Analytic area/clock/SRAM model (paper Table 1) |
//! | [`topo`] | `mp5-topo` | Leaf–spine fabric simulation: composed switches, links, ECMP/flowlet, `mp5fabric` |
//! | [`serve`] | `mp5-serve` | Live operation: crash-safe snapshot/restore + program hot-swap, `mp5serve` |
//! | [`sim`] | `mp5-sim` | Experiment harness regenerating every paper table & figure |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mp5_analysis as analysis;
pub use mp5_apps as apps;
pub use mp5_asic as asic;
pub use mp5_banzai as banzai;
pub use mp5_baselines as baselines;
pub use mp5_compiler as compiler;
pub use mp5_core as core;
pub use mp5_fabric as fabric;
pub use mp5_faults as faults;
pub use mp5_lang as lang;
pub use mp5_serve as serve;
pub use mp5_sim as sim;
pub use mp5_topo as topo;
pub use mp5_trace as trace;
pub use mp5_traffic as traffic;
pub use mp5_types as types;
