#!/bin/bash
# Regenerates every paper table and figure at full scale.
# Results land in results/*.txt; EXPERIMENTS.md records the comparison.
set -e
export MP5_EXP_PACKETS=${MP5_EXP_PACKETS:-20000}
export MP5_EXP_SEEDS=${MP5_EXP_SEEDS:-10}
export MP5_EXP_JSON=${MP5_EXP_JSON:-$(pwd)/results}
for b in table1 micro_d2 micro_d3 micro_d4 fig7a fig7b fig7c fig7d fig8 \
         ablation_fifo ablation_remap ablation_flow_order ext_chiplet; do
  echo "=== $b ==="
  cargo bench -p mp5-bench --bench "$b" 2>/dev/null | tee "results/$b.txt"
done
